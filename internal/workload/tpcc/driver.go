package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	numTxnTypes
)

// String names the transaction type.
func (t TxnType) String() string {
	switch t {
	case TxnNewOrder:
		return "NewOrder"
	case TxnPayment:
		return "Payment"
	case TxnOrderStatus:
		return "OrderStatus"
	case TxnDelivery:
		return "Delivery"
	case TxnStockLevel:
		return "StockLevel"
	default:
		return "?"
	}
}

// Mix is the paper's transaction percentages: NewOrder 45, Payment 43,
// OrderStatus 4, Delivery 4, StockLevel 4 (Section 6.1.3).
var Mix = [numTxnTypes]int{45, 43, 4, 4, 4}

// Config configures a run.
type Config struct {
	DB         engineapi.DB
	Warehouses int
	Threads    int
	Scale      Scale
	// TxnsPerThread bounds the run when Duration is zero.
	TxnsPerThread int
	// Duration bounds the run by wall-clock time when non-zero.
	Duration time.Duration
	Seed     int64
	// Partitioned binds each thread to a home warehouse (thread i ->
	// warehouse i%W+1); otherwise each transaction draws a random
	// warehouse. Figure 7 studies this knob.
	Partitioned bool
	// MaxRetries bounds per-transaction retry on conflicts (default 10).
	MaxRetries int
	// PipelineDepth enables pipelined commits for engines implementing
	// engineapi.AsyncCommitter (HiEngine): up to this many transactions
	// per thread may be awaiting durability while the worker proceeds
	// (commit pipelining, Section 4.2). 0 = fully synchronous commits.
	PipelineDepth int
	// OnAccess, when set, is called for every record access with the
	// warehouse being touched (NUMA accounting, Figure 7).
	OnAccess func(thread, warehouse int)
	// OnCommit, when set, is called once per committed transaction with
	// the executing thread. The Figure 6 harness charges cross-socket
	// costs for the engine's shared structures (CSN counter, log tails)
	// here -- the paper's explanation for the >64-core scalability dip.
	OnCommit func(thread int)
}

// Result summarizes a run.
type Result struct {
	Counts    [numTxnTypes]int64
	Rollbacks int64 // intentional NewOrder rollbacks
	Conflicts int64 // retried conflict aborts
	Elapsed   time.Duration
	// Latency percentiles per transaction type (client-perceived,
	// including conflict retries). Zero when no sample was taken.
	LatP50 [numTxnTypes]time.Duration
	LatP99 [numTxnTypes]time.Duration
}

// TpmC returns NewOrder transactions per minute (the TPC-C metric).
func (r Result) TpmC() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Counts[TxnNewOrder]) / r.Elapsed.Minutes()
}

// Total returns total committed transactions.
func (r Result) Total() int64 {
	var n int64
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("tpmC=%.0f total=%d (NO=%d P=%d OS=%d D=%d SL=%d) rollbacks=%d conflicts=%d in %v; NewOrder p50=%v p99=%v",
		r.TpmC(), r.Total(), r.Counts[0], r.Counts[1], r.Counts[2], r.Counts[3], r.Counts[4],
		r.Rollbacks, r.Conflicts, r.Elapsed.Round(time.Millisecond),
		r.LatP50[TxnNewOrder].Round(time.Microsecond), r.LatP99[TxnNewOrder].Round(time.Microsecond))
}

// Driver executes the workload.
type Driver struct {
	cfg        Config
	historySeq atomic.Int64
	entrySeq   atomic.Int64

	sessMu   sync.Mutex
	sessions map[int]*session // RunOne benchmark sessions
}

// NewDriver builds a driver; Load must have populated the database.
func NewDriver(cfg Config) *Driver {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 10
	}
	if cfg.Scale.Districts == 0 {
		cfg.Scale = FullScale()
	}
	d := &Driver{cfg: cfg}
	d.historySeq.Store(1 << 40) // clear of loader-assigned history keys
	d.entrySeq.Store(1 << 20)
	return d
}

// Run executes the mix and returns aggregate results.
func (d *Driver) Run() (Result, error) {
	var counts [numTxnTypes]atomic.Int64
	var rollbacks, conflicts atomic.Int64
	deadline := time.Time{}
	if d.cfg.Duration > 0 {
		deadline = time.Now().Add(d.cfg.Duration)
	}
	limit := d.cfg.TxnsPerThread
	if limit <= 0 && d.cfg.Duration <= 0 {
		limit = 100
	}

	var wg sync.WaitGroup
	errCh := make(chan error, d.cfg.Threads)
	var latMu sync.Mutex
	var lats [numTxnTypes][]time.Duration
	start := time.Now()
	for th := 0; th < d.cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s := &session{
				d:      d,
				thread: th,
				rng:    rand.New(rand.NewSource(d.cfg.Seed + int64(th)*104729 + 7)),
				homeW:  th%d.cfg.Warehouses + 1,
			}
			if d.cfg.PipelineDepth > 0 {
				s.inflight = make(chan struct{}, d.cfg.PipelineDepth)
			}
			defer func() {
				if err := s.drain(); err != nil {
					errCh <- fmt.Errorf("thread %d async commit: %w", th, err)
				}
			}()
			var local [numTxnTypes][]time.Duration
			defer func() {
				latMu.Lock()
				for i := range local {
					lats[i] = append(lats[i], local[i]...)
				}
				latMu.Unlock()
			}()
			for i := 0; ; i++ {
				if d.cfg.Duration > 0 {
					if time.Now().After(deadline) {
						return
					}
				} else if i >= limit {
					return
				}
				tt := d.pickTxn(s.rng)
				w := s.homeW
				if !d.cfg.Partitioned {
					w = s.rng.Intn(d.cfg.Warehouses) + 1
				}
				t0 := time.Now()
				ok, err := d.runWithRetry(s, tt, w, &rollbacks, &conflicts)
				if err != nil {
					errCh <- fmt.Errorf("thread %d %v: %w", th, tt, err)
					return
				}
				if ok {
					counts[tt].Add(1)
					if len(local[tt]) < 4096 {
						local[tt] = append(local[tt], time.Since(t0))
					}
				}
			}
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return Result{}, err
	default:
	}
	var res Result
	for i := range counts {
		res.Counts[i] = counts[i].Load()
	}
	res.Rollbacks = rollbacks.Load()
	res.Conflicts = conflicts.Load()
	res.Elapsed = elapsed
	for tt := range lats {
		l := lats[tt]
		if len(l) == 0 {
			continue
		}
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		res.LatP50[tt] = l[len(l)/2]
		res.LatP99[tt] = l[len(l)*99/100]
	}
	return res, nil
}

// RunOne executes a single transaction of the given type on thread's
// session against warehouse w (0 = the thread's home warehouse), retrying
// conflicts. ok is false for intentional rollbacks. Benchmark harnesses use
// this to measure per-transaction cost.
func (d *Driver) RunOne(thread int, tt TxnType, w int) (bool, error) {
	d.sessMu.Lock()
	if d.sessions == nil {
		d.sessions = make(map[int]*session)
	}
	s := d.sessions[thread]
	if s == nil {
		s = &session{
			d:      d,
			thread: thread,
			rng:    rand.New(rand.NewSource(d.cfg.Seed + int64(thread)*104729 + 7)),
			homeW:  thread%d.cfg.Warehouses + 1,
		}
		if d.cfg.PipelineDepth > 0 {
			s.inflight = make(chan struct{}, d.cfg.PipelineDepth)
		}
		d.sessions[thread] = s
	}
	d.sessMu.Unlock()
	if w <= 0 {
		w = s.homeW
	}
	var rollbacks, conflicts atomic.Int64
	return d.runWithRetry(s, tt, w, &rollbacks, &conflicts)
}

// DrainSessions waits out pipelined commits of RunOne sessions.
func (d *Driver) DrainSessions() error {
	d.sessMu.Lock()
	defer d.sessMu.Unlock()
	for _, s := range d.sessions {
		if err := s.drain(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) pickTxn(rng *rand.Rand) TxnType {
	n := rng.Intn(100)
	acc := 0
	for t := TxnType(0); t < numTxnTypes; t++ {
		acc += Mix[t]
		if n < acc {
			return t
		}
	}
	return TxnNewOrder
}

// runWithRetry executes one transaction, retrying conflict aborts. ok is
// false when the transaction ended in an intentional rollback.
func (d *Driver) runWithRetry(s *session, tt TxnType, w int, rollbacks, conflicts *atomic.Int64) (bool, error) {
	for attempt := 0; attempt <= d.cfg.MaxRetries; attempt++ {
		var err error
		switch tt {
		case TxnNewOrder:
			err = s.newOrder(w)
		case TxnPayment:
			err = s.payment(w)
		case TxnOrderStatus:
			err = s.orderStatus(w)
		case TxnDelivery:
			err = s.delivery(w)
		case TxnStockLevel:
			err = s.stockLevel(w)
		}
		switch {
		case err == nil:
			if d.cfg.OnCommit != nil {
				d.cfg.OnCommit(s.thread)
			}
			return true, nil
		case errors.Is(err, errUserRollback):
			rollbacks.Add(1)
			return false, nil
		case errors.Is(err, engineapi.ErrConflict):
			conflicts.Add(1)
			continue
		default:
			return false, err
		}
	}
	// Retries exhausted under contention: count as a conflict loss.
	return false, nil
}

// Verify runs a subset of TPC-C's 3.3.2 consistency conditions: for every
// district, d_next_o_id - 1 equals the maximum o_id in orders and in
// new_order (when present), and every order's ol_cnt matches its order-line
// count.
func (d *Driver) Verify() error {
	tx, err := d.cfg.DB.Begin(0)
	if err != nil {
		return err
	}
	defer tx.Commit()
	for w := 1; w <= d.cfg.Warehouses; w++ {
		for dd := 1; dd <= d.cfg.Scale.Districts; dd++ {
			dRow, err := tx.GetByKey(TDistrict, 0, core.I(int64(w)), core.I(int64(dd)))
			if err != nil {
				return fmt.Errorf("district %d/%d: %w", w, dd, err)
			}
			nextO := dRow[6].Int()
			var maxO, maxNO int64
			var orders []core.Row
			err = tx.ScanPrefix(TOrder, 0, []core.Value{core.I(int64(w)), core.I(int64(dd))},
				func(row core.Row) bool {
					if row[2].Int() > maxO {
						maxO = row[2].Int()
					}
					orders = append(orders, row)
					return true
				})
			if err != nil {
				return err
			}
			if err := tx.ScanPrefix(TNewOrder, 0, []core.Value{core.I(int64(w)), core.I(int64(dd))},
				func(row core.Row) bool {
					if row[2].Int() > maxNO {
						maxNO = row[2].Int()
					}
					return true
				}); err != nil {
				return err
			}
			if maxO != nextO-1 {
				return fmt.Errorf("tpcc consistency: w=%d d=%d max(o_id)=%d != d_next_o_id-1=%d",
					w, dd, maxO, nextO-1)
			}
			if maxNO != 0 && maxNO > maxO {
				return fmt.Errorf("tpcc consistency: w=%d d=%d new_order max %d > orders max %d",
					w, dd, maxNO, maxO)
			}
			// Spot-check order-line counts on a sample of orders.
			for i := 0; i < len(orders); i += 50 {
				o := orders[i]
				cnt := int64(0)
				if err := tx.ScanPrefix(TOrderLine, 0,
					[]core.Value{o[0], o[1], o[2]},
					func(core.Row) bool { cnt++; return true }); err != nil {
					return err
				}
				if cnt != o[6].Int() {
					return fmt.Errorf("tpcc consistency: w=%d d=%d o=%d ol_cnt=%d but %d lines",
						w, dd, o[2].Int(), o[6].Int(), cnt)
				}
			}
		}
	}
	return nil
}
