package tpcc

import (
	"fmt"
	"math/rand"
	"sync"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
)

// Scale sets the per-warehouse cardinalities. FullScale matches the TPC-C
// specification; tests use SmallScale to keep runtimes sane while exercising
// the same code paths.
type Scale struct {
	Districts  int
	Customers  int // per district
	Items      int
	InitOrders int // per district
}

// FullScale is the specification scale (~100 MB per warehouse, matching the
// paper's loading note).
func FullScale() Scale {
	return Scale{Districts: DistrictsPerWarehouse, Customers: CustomersPerDistrict,
		Items: ItemCount, InitOrders: InitialOrdersPerDist}
}

// SmallScale is a reduced dataset for tests and quick benchmarks.
func SmallScale() Scale {
	return Scale{Districts: DistrictsPerWarehouse, Customers: 30, Items: 200, InitOrders: 10}
}

// BenchScale is a middle ground for the paper-figure benchmark harness.
func BenchScale() Scale {
	return Scale{Districts: DistrictsPerWarehouse, Customers: 300, Items: 5000, InitOrders: 100}
}

// lastNames builds TPC-C customer last names from the standard syllables.
var lastNameSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName returns the spec last name for number n in [0, 999].
func LastName(n int) string {
	return lastNameSyllables[n/100] + lastNameSyllables[(n/10)%10] + lastNameSyllables[n%10]
}

// nuRandCLast is the spec's constant C for the customer-last-name NURand.
const nuRandCLast = 123

// NURand is the TPC-C non-uniform random function.
func NURand(rng *rand.Rand, a, c, x, y int) int {
	return (((rng.Intn(a+1) | (rng.Intn(y-x+1) + x)) + c) % (y - x + 1)) + x
}

// randomCustomerID draws a customer per the spec distribution.
func randomCustomerID(rng *rand.Rand, sc Scale) int {
	if sc.Customers >= 3000 {
		return NURand(rng, 1023, 259, 1, sc.Customers)
	}
	return rng.Intn(sc.Customers) + 1
}

// randomItemID draws an item per the spec distribution.
func randomItemID(rng *rand.Rand, sc Scale) int {
	if sc.Items >= 100000 {
		return NURand(rng, 8191, 7911, 1, sc.Items)
	}
	return rng.Intn(sc.Items) + 1
}

// randomLastNameNum draws a last-name number for Payment/OrderStatus.
func randomLastNameNum(rng *rand.Rand, sc Scale) int {
	n := NURand(rng, 255, nuRandCLast, 0, 999)
	if sc.Customers < 1000 {
		// Reduced scale: keep the name space aligned with loaded names.
		n %= sc.Customers
	}
	return n
}

func randString(rng *rand.Rand, minLen, maxLen int) string {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := minLen
	if maxLen > minLen {
		n += rng.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

// Load populates warehouses 1..cfg.Warehouses at the given scale using
// `threads` parallel loaders (one warehouse per task).
func Load(db engineapi.DB, warehouses int, sc Scale, threads int) error {
	secondaries := true
	for _, s := range Schemas(secondaries) {
		if err := db.CreateTable(s); err != nil {
			return fmt.Errorf("tpcc: create %s: %w", s.Name, err)
		}
	}
	// Items are shared across warehouses.
	if err := loadItems(db, sc); err != nil {
		return err
	}
	if threads <= 0 {
		threads = 4
	}
	wCh := make(chan int, warehouses)
	for w := 1; w <= warehouses; w++ {
		wCh <- w
	}
	close(wCh)
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for w := range wCh {
				if err := loadWarehouse(db, worker, w, sc); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

func loadItems(db engineapi.DB, sc Scale) error {
	rng := rand.New(rand.NewSource(42))
	const batch = 500
	worker := 0
	for i := 1; i <= sc.Items; {
		// Rotate workers so the item load spreads across log streams.
		tx, err := db.Begin(worker)
		worker = (worker + 1) % 4
		if err != nil {
			return err
		}
		for j := 0; j < batch && i <= sc.Items; j++ {
			err := tx.Insert(TItem, core.Row{
				core.I(int64(i)),
				core.I(int64(rng.Intn(10000) + 1)),
				core.S(randString(rng, 14, 24)),
				core.F(float64(rng.Intn(9900)+100) / 100),
				core.S(randString(rng, 26, 50)),
			})
			if err != nil {
				tx.Abort()
				return fmt.Errorf("tpcc: load item %d: %w", i, err)
			}
			i++
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

func loadWarehouse(db engineapi.DB, worker, w int, sc Scale) error {
	rng := rand.New(rand.NewSource(int64(w) * 7919))
	tx, err := db.Begin(worker)
	if err != nil {
		return err
	}
	if err := tx.Insert(TWarehouse, core.Row{
		core.I(int64(w)), core.S(randString(rng, 6, 10)),
		core.S(randString(rng, 10, 20)), core.S(randString(rng, 10, 20)),
		core.S("ST"), core.S("123456789"),
		core.F(float64(rng.Intn(2000)) / 10000), core.F(300000),
	}); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	// Stock for every item.
	const batch = 500
	for i := 1; i <= sc.Items; {
		tx, err := db.Begin(worker)
		if err != nil {
			return err
		}
		for j := 0; j < batch && i <= sc.Items; j++ {
			if err := tx.Insert(TStock, core.Row{
				core.I(int64(w)), core.I(int64(i)),
				core.I(int64(rng.Intn(91) + 10)),
				core.S(randString(rng, 24, 24)),
				core.I(0), core.I(0), core.I(0),
				core.S(randString(rng, 26, 50)),
			}); err != nil {
				tx.Abort()
				return fmt.Errorf("tpcc: load stock w=%d i=%d: %w", w, i, err)
			}
			i++
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	// Districts, customers, history, orders.
	hSeq := int64(w) << 32
	for d := 1; d <= sc.Districts; d++ {
		tx, err := db.Begin(worker)
		if err != nil {
			return err
		}
		if err := tx.Insert(TDistrict, core.Row{
			core.I(int64(w)), core.I(int64(d)),
			core.S(randString(rng, 6, 10)), core.S(randString(rng, 10, 20)),
			core.F(float64(rng.Intn(2000)) / 10000), core.F(30000),
			core.I(int64(sc.InitOrders + 1)),
		}); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		// Customers.
		for c := 1; c <= sc.Customers; {
			tx, err := db.Begin(worker)
			if err != nil {
				return err
			}
			for j := 0; j < batch && c <= sc.Customers; j++ {
				lastNum := c - 1
				if lastNum > 999 {
					lastNum = NURand(rng, 255, nuRandCLast, 0, 999)
				}
				credit := "GC"
				if rng.Intn(10) == 0 {
					credit = "BC"
				}
				if err := tx.Insert(TCustomer, core.Row{
					core.I(int64(w)), core.I(int64(d)), core.I(int64(c)),
					core.S(randString(rng, 8, 16)), core.S("OE"), core.S(LastName(lastNum)),
					core.S(credit), core.F(float64(rng.Intn(5000)) / 10000),
					core.F(-10), core.F(10), core.I(1), core.I(0),
					core.S(randString(rng, 50, 100)),
				}); err != nil {
					tx.Abort()
					return fmt.Errorf("tpcc: load customer w=%d d=%d c=%d: %w", w, d, c, err)
				}
				hSeq++
				if err := tx.Insert(THistory, core.Row{
					core.I(hSeq), core.I(int64(w)), core.I(int64(d)), core.I(int64(c)),
					core.F(10), core.S(randString(rng, 12, 24)),
				}); err != nil {
					tx.Abort()
					return err
				}
				c++
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		// Initial orders: the most recent 30% stay undelivered (rows in
		// new_order), per the spec.
		for o := 1; o <= sc.InitOrders; o++ {
			tx, err := db.Begin(worker)
			if err != nil {
				return err
			}
			olCnt := rng.Intn(11) + 5
			cid := rng.Intn(sc.Customers) + 1
			carrier := int64(rng.Intn(10) + 1)
			undelivered := o > sc.InitOrders*7/10
			if undelivered {
				carrier = 0
			}
			if err := tx.Insert(TOrder, core.Row{
				core.I(int64(w)), core.I(int64(d)), core.I(int64(o)),
				core.I(int64(cid)), core.I(int64(o)), core.I(carrier),
				core.I(int64(olCnt)), core.I(1),
			}); err != nil {
				tx.Abort()
				return err
			}
			if undelivered {
				if err := tx.Insert(TNewOrder, core.Row{
					core.I(int64(w)), core.I(int64(d)), core.I(int64(o)),
				}); err != nil {
					tx.Abort()
					return err
				}
			}
			for ol := 1; ol <= olCnt; ol++ {
				amount := float64(0)
				deliveryD := int64(o)
				if undelivered {
					amount = float64(rng.Intn(999999)) / 100
					deliveryD = 0
				}
				if err := tx.Insert(TOrderLine, core.Row{
					core.I(int64(w)), core.I(int64(d)), core.I(int64(o)), core.I(int64(ol)),
					core.I(int64(rng.Intn(sc.Items) + 1)), core.I(int64(w)),
					core.I(deliveryD), core.I(5), core.F(amount),
					core.S(randString(rng, 24, 24)),
				}); err != nil {
					tx.Abort()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
	}
	return nil
}
