package tpcc

import (
	"math/rand"
	"sync"
	"testing"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/memocc"
	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
)

func hiengineDB(t *testing.T) engineapi.DB {
	t.Helper()
	e, err := core.Open(core.Config{Workers: 16, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return adapt.New(e)
}

func memoccDB(t *testing.T) engineapi.DB {
	t.Helper()
	db, err := memocc.New(memocc.Config{Service: srss.New(srss.Config{}), Workers: 16, SegmentSize: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
}

func TestNURandInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := NURand(rng, 1023, 259, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
}

func TestLoadAndMixOnHiEngine(t *testing.T) {
	db := hiengineDB(t)
	if err := Load(db, 2, SmallScale(), 4); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(Config{DB: db, Warehouses: 2, Threads: 4, Scale: SmallScale(),
		TxnsPerThread: 100, Seed: 1})
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[TxnNewOrder] == 0 || res.Counts[TxnPayment] == 0 {
		t.Fatalf("mix did not run: %v", res)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
}

func TestLoadAndMixOnMemOCC(t *testing.T) {
	db := memoccDB(t)
	if err := Load(db, 2, SmallScale(), 4); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(Config{DB: db, Warehouses: 2, Threads: 4, Scale: SmallScale(),
		TxnsPerThread: 100, Seed: 2})
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() == 0 {
		t.Fatalf("nothing committed: %v", res)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("consistency: %v", err)
	}
}

func TestPartitionedModeBindsWarehouses(t *testing.T) {
	db := hiengineDB(t)
	if err := Load(db, 4, SmallScale(), 4); err != nil {
		t.Fatal(err)
	}
	warehousesSeen := make(map[int]map[int]bool) // thread -> warehouses
	var mu sync.Mutex
	d := NewDriver(Config{DB: db, Warehouses: 4, Threads: 4, Scale: SmallScale(),
		TxnsPerThread: 30, Seed: 3, Partitioned: true,
		OnAccess: func(thread, w int) {
			mu.Lock()
			if warehousesSeen[thread] == nil {
				warehousesSeen[thread] = make(map[int]bool)
			}
			warehousesSeen[thread][w] = true
			mu.Unlock()
		}})
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Each thread's home accesses dominate; remote payments/neworders
	// (15%/1%) may touch others, so just check the home warehouse is the
	// most common one... here: the home warehouse must have been seen.
	for th := 0; th < 4; th++ {
		if !warehousesSeen[th][th%4+1] {
			t.Fatalf("thread %d never touched home warehouse %d: %v", th, th%4+1, warehousesSeen[th])
		}
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	db := hiengineDB(t)
	sc := SmallScale()
	if err := Load(db, 1, sc, 2); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(Config{DB: db, Warehouses: 1, Threads: 1, Scale: sc, Seed: 4})
	s := &session{d: d, thread: 0, rng: rand.New(rand.NewSource(9)), homeW: 1}
	// Count initial undelivered orders.
	countNO := func() int {
		tx, _ := db.Begin(0)
		defer tx.Commit()
		n := 0
		tx.ScanPrefix(TNewOrder, 0, []core.Value{core.I(1)}, func(core.Row) bool { n++; return true })
		return n
	}
	before := countNO()
	if before == 0 {
		t.Fatal("loader created no undelivered orders")
	}
	if err := s.delivery(1); err != nil {
		t.Fatal(err)
	}
	after := countNO()
	if after >= before {
		t.Fatalf("delivery drained nothing: %d -> %d", before, after)
	}
	// One order per district should have been delivered.
	if before-after != sc.Districts && before-after == 0 {
		t.Fatalf("delivered %d, expected up to %d", before-after, sc.Districts)
	}
}

func TestUserRollbackRate(t *testing.T) {
	db := hiengineDB(t)
	if err := Load(db, 1, SmallScale(), 2); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(Config{DB: db, Warehouses: 1, Threads: 2, Scale: SmallScale(),
		TxnsPerThread: 400, Seed: 5})
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	// ~1% of NewOrders roll back; with ~360 NewOrders expect a few.
	if res.Rollbacks == 0 {
		t.Logf("warning: no user rollbacks in %d NewOrders (possible but unlikely)", res.Counts[TxnNewOrder])
	}
	// Rolled-back NewOrders must not leave partial state.
	if err := d.Verify(); err != nil {
		t.Fatalf("consistency after rollbacks: %v", err)
	}
}
