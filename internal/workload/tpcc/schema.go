// Package tpcc implements the TPC-C benchmark (Section 6.1.3): the full
// nine-table schema, standard data generation, and all five transaction
// types at the paper's mix (NewOrder 45%, Payment 43%, OrderStatus 4%,
// Delivery 4%, StockLevel 4%), runnable against any engineapi.DB.
package tpcc

import "hiengine/internal/core"

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrder     = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// DistrictsPerWarehouse and friends are the TPC-C scale constants.
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 3000
	ItemCount             = 100000
	InitialOrdersPerDist  = 3000
	StockPerWarehouse     = ItemCount
)

// Schemas returns all nine table schemas. Engines that support secondary
// indexes get the customer last-name index and the order customer index;
// set secondaries false for primary-key-only engines (the drivers then use
// primary-key fallbacks).
func Schemas(secondaries bool) []*core.Schema {
	warehouse := &core.Schema{
		Name: TWarehouse,
		Columns: []core.Column{
			{Name: "w_id", Kind: core.KindInt},
			{Name: "w_name", Kind: core.KindString},
			{Name: "w_street", Kind: core.KindString},
			{Name: "w_city", Kind: core.KindString},
			{Name: "w_state", Kind: core.KindString},
			{Name: "w_zip", Kind: core.KindString},
			{Name: "w_tax", Kind: core.KindFloat},
			{Name: "w_ytd", Kind: core.KindFloat},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
	district := &core.Schema{
		Name: TDistrict,
		Columns: []core.Column{
			{Name: "d_w_id", Kind: core.KindInt},
			{Name: "d_id", Kind: core.KindInt},
			{Name: "d_name", Kind: core.KindString},
			{Name: "d_street", Kind: core.KindString},
			{Name: "d_tax", Kind: core.KindFloat},
			{Name: "d_ytd", Kind: core.KindFloat},
			{Name: "d_next_o_id", Kind: core.KindInt},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0, 1}, Unique: true}},
	}
	customer := &core.Schema{
		Name: TCustomer,
		Columns: []core.Column{
			{Name: "c_w_id", Kind: core.KindInt},
			{Name: "c_d_id", Kind: core.KindInt},
			{Name: "c_id", Kind: core.KindInt},
			{Name: "c_first", Kind: core.KindString},
			{Name: "c_middle", Kind: core.KindString},
			{Name: "c_last", Kind: core.KindString},
			{Name: "c_credit", Kind: core.KindString},
			{Name: "c_discount", Kind: core.KindFloat},
			{Name: "c_balance", Kind: core.KindFloat},
			{Name: "c_ytd_payment", Kind: core.KindFloat},
			{Name: "c_payment_cnt", Kind: core.KindInt},
			{Name: "c_delivery_cnt", Kind: core.KindInt},
			{Name: "c_data", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0, 1, 2}, Unique: true}},
	}
	if secondaries {
		customer.Indexes = append(customer.Indexes,
			core.IndexDef{Name: "by_last", Columns: []int{0, 1, 5}, Unique: false})
	}
	history := &core.Schema{
		Name: THistory,
		Columns: []core.Column{
			{Name: "h_id", Kind: core.KindInt}, // synthetic key (TPC-C history has none)
			{Name: "h_c_w_id", Kind: core.KindInt},
			{Name: "h_c_d_id", Kind: core.KindInt},
			{Name: "h_c_id", Kind: core.KindInt},
			{Name: "h_amount", Kind: core.KindFloat},
			{Name: "h_data", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
	newOrder := &core.Schema{
		Name: TNewOrder,
		Columns: []core.Column{
			{Name: "no_w_id", Kind: core.KindInt},
			{Name: "no_d_id", Kind: core.KindInt},
			{Name: "no_o_id", Kind: core.KindInt},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0, 1, 2}, Unique: true}},
	}
	orders := &core.Schema{
		Name: TOrder,
		Columns: []core.Column{
			{Name: "o_w_id", Kind: core.KindInt},
			{Name: "o_d_id", Kind: core.KindInt},
			{Name: "o_id", Kind: core.KindInt},
			{Name: "o_c_id", Kind: core.KindInt},
			{Name: "o_entry_d", Kind: core.KindInt},
			{Name: "o_carrier_id", Kind: core.KindInt},
			{Name: "o_ol_cnt", Kind: core.KindInt},
			{Name: "o_all_local", Kind: core.KindInt},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0, 1, 2}, Unique: true}},
	}
	if secondaries {
		orders.Indexes = append(orders.Indexes,
			core.IndexDef{Name: "by_cust", Columns: []int{0, 1, 3, 2}, Unique: false})
	}
	orderLine := &core.Schema{
		Name: TOrderLine,
		Columns: []core.Column{
			{Name: "ol_w_id", Kind: core.KindInt},
			{Name: "ol_d_id", Kind: core.KindInt},
			{Name: "ol_o_id", Kind: core.KindInt},
			{Name: "ol_number", Kind: core.KindInt},
			{Name: "ol_i_id", Kind: core.KindInt},
			{Name: "ol_supply_w_id", Kind: core.KindInt},
			{Name: "ol_delivery_d", Kind: core.KindInt},
			{Name: "ol_quantity", Kind: core.KindInt},
			{Name: "ol_amount", Kind: core.KindFloat},
			{Name: "ol_dist_info", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0, 1, 2, 3}, Unique: true}},
	}
	item := &core.Schema{
		Name: TItem,
		Columns: []core.Column{
			{Name: "i_id", Kind: core.KindInt},
			{Name: "i_im_id", Kind: core.KindInt},
			{Name: "i_name", Kind: core.KindString},
			{Name: "i_price", Kind: core.KindFloat},
			{Name: "i_data", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
	stock := &core.Schema{
		Name: TStock,
		Columns: []core.Column{
			{Name: "s_w_id", Kind: core.KindInt},
			{Name: "s_i_id", Kind: core.KindInt},
			{Name: "s_quantity", Kind: core.KindInt},
			{Name: "s_dist", Kind: core.KindString},
			{Name: "s_ytd", Kind: core.KindInt},
			{Name: "s_order_cnt", Kind: core.KindInt},
			{Name: "s_remote_cnt", Kind: core.KindInt},
			{Name: "s_data", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0, 1}, Unique: true}},
	}
	return []*core.Schema{warehouse, district, customer, history, newOrder, orders, orderLine, item, stock}
}
