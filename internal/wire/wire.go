// Package wire defines HiEngine's client/server wire protocol: frame
// layout, opcode and status-code tables, payload encodings, and the
// bidirectional mapping between Go errors and stable wire codes.
//
// The protocol is length-prefixed binary over a byte stream:
//
//	frame   := length uint32 | requestID uint64 | opcode uint8 | payload
//
// length is big-endian and covers requestID+opcode+payload (so a frame
// occupies 4+length bytes on the wire, length >= 9). Requests and responses
// share the layout; a response echoes its request's ID, which is what makes
// out-of-order (pipelined) responses possible: the server may answer a
// later request on a connection before an earlier commit's durability
// callback fires. Frames larger than MaxFrame, zero-length frames, or
// frames with an unknown opcode are protocol violations: the receiver must
// fail the connection (not the process).
//
// Every response payload starts with a status code (uint16) and a message
// (uvarint length + bytes); success-specific body follows. Codes are
// stable: each error crossing the wire carries exactly one code, chosen by
// Classify with fatal codes taking precedence, and the client rehydrates
// the code into an error that satisfies errors.Is against the same
// sentinel the server saw (engineapi.ErrConflict, core.ErrClosed, ...).
// Retryable reports the retryability matrix: only CodeConflict and
// CodeBusy may be retried; in particular CodeClosed and CodeDurabilityLost
// are fatal so a client never retries into a fail-stopped engine.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/obs"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
)

// MaxFrame bounds the length field: requestID + opcode + payload. Large
// enough for multi-megabyte scan results, small enough that a garbage
// length prefix cannot make the reader allocate unbounded memory.
const MaxFrame = 16 << 20

// headerSize is requestID + opcode, the fixed part covered by length.
const headerSize = 9

// MaxPayload is the largest payload that fits a legal frame: MaxFrame
// minus the fixed header the length field also covers. A sender must
// never emit a larger payload -- the receiver's ReadFrame would reject
// it as a protocol violation and fail the whole connection.
const MaxPayload = MaxFrame - headerSize

// Op is a frame opcode.
type Op uint8

// Request opcodes, and the single response opcode. A connection is one
// server-side session: Begin/Commit/Abort act on the session transaction,
// Exec runs one SQL statement in it (or autocommits outside one).
// Prepare/ExecStmt/CloseStmt are the prepared-statement path: parse/plan
// is paid once at Prepare and every ExecStmt binds an argument row into
// the server-side compiled plan (the wire form of Section 3.3's full-stack
// code generation). Statement ids are scoped to the connection's session.
// Opcode numbers are wire-stable: never renumber (which is why the
// prepared opcodes sit above OpResponse).
const (
	OpPing      Op = 1  // empty payload; response: empty body
	OpExec      Op = 2  // sql string, args row; response: result body
	OpBegin     Op = 3  // empty; opens the session transaction
	OpCommit    Op = 4  // empty; response sent when the commit is durable
	OpAbort     Op = 5  // empty; rolls back the session transaction
	OpStats     Op = 6  // empty; response: stats snapshot text
	OpResponse  Op = 7  // server -> client only
	OpPrepare   Op = 8  // sql string; response: stmt id + param count
	OpExecStmt  Op = 9  // stmt id, args row; response: result body
	OpCloseStmt Op = 10 // stmt id; response: empty body
	// OpExecAt is OpExec with a read-your-writes token: the payload carries
	// the client's last-seen commit CSN ahead of the statement. A replica
	// waits (bounded) until its applied watermark reaches the token before
	// executing, or answers CodeBusy so the client redirects to the primary.
	OpExecAt Op = 11 // min csn, sql string, args row; response: result body
	// Log-shipping opcodes: a replica process follows a remote primary by
	// mirroring its PLogs. Hello identifies the primary (manifest + current
	// CSN), List enumerates its PLogs, Fetch reads a bounded chunk of one.
	OpReplHello Op = 12 // empty; response: manifest id + current csn
	OpReplList  Op = 13 // empty; response: plog stat list
	OpReplFetch Op = 14 // plog id, offset, max bytes; response: stat + data
	// Sharding opcodes. OpShardMap serves the node's shard map so clients
	// self-bootstrap topology from any member; the request may carry the
	// shard id the caller believes it is talking to, and a mismatch answers
	// CodeWrongShard. The 2PC opcodes drive the distributed-commit protocol
	// against a participant: Prepare votes on the session's open transaction
	// (answered at prepare-record durability, like commit), Decide delivers
	// the coordinator's commit/abort decision for a prepared gtid (answered
	// at decision-record durability), Status asks the txn's home participant
	// for its durable outcome, and Recover lists gtids prepared here but
	// still undecided (the in-doubt list a coordinator resolves on
	// reconnect).
	OpShardMap   Op = 15 // optional expected shard id+version; response: shard map
	OpTxnPrepare Op = 16 // gtid; response at durability: vote flag
	OpTxnDecide  Op = 17 // gtid + decision; response at durability: commit csn
	OpTxnStatus  Op = 18 // gtid; response: csn (committed) / in-doubt / not-found
	OpTxnRecover Op = 19 // empty; response: in-doubt gtid list
	// OpTxnForget prunes a decided gtid's 2PC bookkeeping on a participant
	// once the coordinator knows the decision is durably applied everywhere
	// (answered at forget-record durability). Best-effort: a lost forget
	// only retains metadata, never changes an outcome.
	OpTxnForget Op = 20 // gtid; response at durability: empty body
	// Streaming-scan opcodes. A SELECT whose result would overflow one frame
	// streams instead: ScanOpen parses and plans the statement, pins a
	// dedicated MVCC snapshot, and answers with the first bounded page plus a
	// connection-scoped cursor id; ScanNext pulls subsequent pages from the
	// same pinned snapshot; ScanClose releases the cursor early (idempotent,
	// like OpCloseStmt). Every page body carries a done flag -- the server
	// auto-closes an exhausted cursor, so a client only sends ScanClose when
	// it abandons a scan. A ScanNext against an unknown, expired or reaped
	// cursor answers CodeCursorGone.
	OpScanOpen  Op = 21 // fetch size, sql string, args row; response: cursor page
	OpScanNext  Op = 22 // cursor id, fetch size; response: cursor page
	OpScanClose Op = 23 // cursor id; response: empty body
	// OpExecBatch carries N statements in one frame and answers with one
	// response carrying a per-statement affected-row vector. Outside an
	// explicit transaction the batch executes atomically in its own
	// transaction and the response is sent when that commit is durable (the
	// same answered-at-durability group-commit path as OpCommit); inside one
	// it behaves like N pipelined statements of the open transaction. Any
	// statement error aborts the rest of the batch.
	OpExecBatch Op = 24 // n, then n x {sql string, args row}; response: affected vector + csn
)

// String names the opcode.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpExec:
		return "exec"
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpStats:
		return "stats"
	case OpResponse:
		return "response"
	case OpPrepare:
		return "prepare"
	case OpExecStmt:
		return "exec_stmt"
	case OpCloseStmt:
		return "close_stmt"
	case OpExecAt:
		return "exec_at"
	case OpReplHello:
		return "repl_hello"
	case OpReplList:
		return "repl_list"
	case OpReplFetch:
		return "repl_fetch"
	case OpShardMap:
		return "shard_map"
	case OpTxnPrepare:
		return "txn_prepare"
	case OpTxnDecide:
		return "txn_decide"
	case OpTxnStatus:
		return "txn_status"
	case OpTxnRecover:
		return "txn_recover"
	case OpTxnForget:
		return "txn_forget"
	case OpScanOpen:
		return "scan_open"
	case OpScanNext:
		return "scan_next"
	case OpScanClose:
		return "scan_close"
	case OpExecBatch:
		return "exec_batch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// MaxOp is the highest assigned opcode (sizing per-opcode metric tables).
const MaxOp = OpExecBatch

// TraceFlag marks a traced frame. It rides the opcode byte's high bit (no
// assigned opcode comes near it) so untraced frames are byte-identical to
// the pre-trace protocol: untraced requests pay zero extra bytes. A traced
// frame's payload begins with a big-endian 64-bit trace id, which the frame
// readers strip into Frame.TraceID; on a traced response the remaining
// payload then carries a stage-timing block (AppendTraceBlock) ahead of the
// usual code/msg/body.
const TraceFlag Op = 0x80

// traceIDSize is the trace id prefix a traced frame carries.
const traceIDSize = 8

// validRequest reports whether o is a client-issued opcode.
func validRequest(o Op) bool {
	return (o >= OpPing && o <= OpStats) || (o >= OpPrepare && o <= OpExecBatch)
}

// Code is a stable wire status code.
type Code uint16

// The code table. Codes are wire-stable: never renumber.
const (
	CodeOK Code = 0
	// CodeConflict: retryable concurrency failure (write-write conflict,
	// OCC validation abort, lock conflict). The transaction was aborted.
	CodeConflict Code = 1
	// CodeDuplicate: unique-constraint violation. Not retryable.
	CodeDuplicate Code = 2
	// CodeNotFound: no visible row. Not retryable.
	CodeNotFound Code = 3
	// CodeBusy: admission control rejected the request (server at its
	// in-flight or connection bound). Retryable with backoff.
	CodeBusy Code = 4
	// CodeBadRequest: parse/plan/arity/transaction-state errors. The
	// statement can never succeed as written; not retryable.
	CodeBadRequest Code = 5
	// CodeClosed: the engine or server is closed/draining. Fatal: the
	// client must not retry this endpoint.
	CodeClosed Code = 6
	// CodeDurabilityLost: the engine fail-stopped after a durability
	// failure. Fatal; retrying into a fail-stopped engine is forbidden.
	CodeDurabilityLost Code = 7
	// CodeInternal: unclassified server-side failure. Not retryable.
	CodeInternal Code = 8
	// CodeReadOnly: the statement needs write access but the server is a
	// read-only replica. Not retryable here -- the client must redirect the
	// statement to the primary.
	CodeReadOnly Code = 9
	// CodeStaleEpoch: the request carried (or the serving node holds) a
	// primary epoch older than one it has observed. The losing side of a
	// failover returns this for writes and repl fetches; the fix is
	// rediscovery of the current primary, never a retry here.
	CodeStaleEpoch Code = 10
	// CodeInDoubt: the named distributed transaction is prepared here but
	// its commit/abort decision is not yet known. Not retryable in place --
	// the outcome belongs to the coordinator (or the recovery protocol
	// against the txn's home participant), which must be consulted.
	CodeInDoubt Code = 11
	// CodeWrongShard: the request named a shard id this node does not own
	// (a stale shard map, or a misrouted statement). Not retryable here --
	// the client must refresh its shard map and re-route.
	CodeWrongShard Code = 12
	// CodeCursorGone: an OpScanNext/OpScanClose named a cursor this
	// connection does not hold -- never opened, already exhausted, failed
	// mid-scan, or reaped with the idle connection. Not retryable and not
	// fatal: retrying cannot resurrect the snapshot (rows may already have
	// been consumed), so the client must reissue the scan from the top if it
	// still wants the data.
	CodeCursorGone Code = 13
)

// MaxCode is the highest assigned status code (sizing per-code metric
// tables).
const MaxCode = CodeCursorGone

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeConflict:
		return "conflict"
	case CodeDuplicate:
		return "duplicate"
	case CodeNotFound:
		return "not_found"
	case CodeBusy:
		return "busy"
	case CodeBadRequest:
		return "bad_request"
	case CodeClosed:
		return "closed"
	case CodeDurabilityLost:
		return "durability_lost"
	case CodeInternal:
		return "internal"
	case CodeReadOnly:
		return "read_only"
	case CodeStaleEpoch:
		return "stale_epoch"
	case CodeInDoubt:
		return "in_doubt"
	case CodeWrongShard:
		return "wrong_shard"
	case CodeCursorGone:
		return "cursor_gone"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Retryable is the retryability matrix: exactly the transient codes a
// client may retry (with backoff). Fatal and semantic codes are excluded.
func Retryable(c Code) bool { return c == CodeConflict || c == CodeBusy }

// Fatal reports codes after which the endpoint is known dead for further
// work: the client should fail fast and surface the error.
func Fatal(c Code) bool { return c == CodeClosed || c == CodeDurabilityLost }

// ErrServerBusy is the admission-control sentinel: the server refused the
// request rather than queue it unboundedly. Carried as CodeBusy.
var ErrServerBusy = errors.New("wire: server busy")

// ErrProtocol marks framing violations (torn, oversize, zero-length or
// unknown-opcode frames). The connection carrying it is dead.
var ErrProtocol = errors.New("wire: protocol violation")

// ErrWrongShard is the misrouting sentinel: the request named a shard this
// node does not own. Carried as CodeWrongShard; the fix is a shard-map
// refresh, never a retry in place.
var ErrWrongShard = errors.New("wire: wrong shard")

// ErrCursorGone is the expired-cursor sentinel: a scan continuation named a
// cursor the connection no longer holds. Carried as CodeCursorGone; the fix
// is reissuing the scan, never retrying the continuation.
var ErrCursorGone = errors.New("wire: cursor gone")

// Classify maps an error onto exactly one stable code. Precedence puts
// fatal conditions first: an error that wraps both core.ErrDurabilityLost
// and a retryable sentinel must surface as fatal, never as retryable.
func Classify(err error) Code {
	// An error that already crossed the wire carries its code; trust it
	// unless a fatal sentinel is also present (fatal always wins). This
	// keeps codes stable when a remote error is re-classified, e.g. by a
	// proxy tier, including codes with no origin sentinel (bad_request).
	var we *Error
	if errors.As(err, &we) &&
		!errors.Is(err, core.ErrDurabilityLost) && !errors.Is(err, core.ErrClosed) {
		return we.Code
	}
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, core.ErrDurabilityLost):
		return CodeDurabilityLost
	case errors.Is(err, core.ErrClosed):
		return CodeClosed
	case errors.Is(err, ErrServerBusy), errors.Is(err, core.ErrWorkerBusy):
		return CodeBusy
	case errors.Is(err, core.ErrStaleEpoch):
		return CodeStaleEpoch
	case errors.Is(err, core.ErrReadOnlyReplica):
		return CodeReadOnly
	case errors.Is(err, core.ErrInDoubt):
		return CodeInDoubt
	case errors.Is(err, ErrWrongShard):
		return CodeWrongShard
	case errors.Is(err, ErrCursorGone):
		return CodeCursorGone
	case errors.Is(err, engineapi.ErrConflict):
		return CodeConflict
	case errors.Is(err, engineapi.ErrDuplicate):
		return CodeDuplicate
	case errors.Is(err, engineapi.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, sqlfront.ErrNoTxn),
		errors.Is(err, sqlfront.ErrCrossEngine),
		errors.Is(err, sqlfront.ErrBadPlan),
		errors.Is(err, sqlfront.ErrParamCount),
		errors.Is(err, ErrBadStatement),
		errors.Is(err, ErrProtocol):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// ErrBadStatement tags request errors that originate in parsing or
// statement validation outside the sqlfront sentinels (sqlfront returns
// plain fmt.Errorf for lexer/parser failures). The server wraps those
// before classification so they travel as CodeBadRequest.
var ErrBadStatement = errors.New("wire: bad statement")

// sentinels maps each non-OK code back to the sentinel a client-side
// errors.Is should match. CodeBadRequest and CodeInternal have no single
// origin sentinel; they unwrap to nil and match only *Error itself.
func sentinel(c Code) error {
	switch c {
	case CodeConflict:
		return engineapi.ErrConflict
	case CodeDuplicate:
		return engineapi.ErrDuplicate
	case CodeNotFound:
		return engineapi.ErrNotFound
	case CodeBusy:
		return ErrServerBusy
	case CodeClosed:
		return core.ErrClosed
	case CodeDurabilityLost:
		return core.ErrDurabilityLost
	case CodeReadOnly:
		return core.ErrReadOnlyReplica
	case CodeStaleEpoch:
		return core.ErrStaleEpoch
	case CodeInDoubt:
		return core.ErrInDoubt
	case CodeWrongShard:
		return ErrWrongShard
	case CodeCursorGone:
		return ErrCursorGone
	default:
		return nil
	}
}

// Error is a wire-carried failure: the stable code plus the server's
// message. Unwrap returns the code's sentinel, so
// errors.Is(err, engineapi.ErrConflict) etc. hold across the process
// boundary exactly as they do in-process.
type Error struct {
	Code Code
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Code.String()
	}
	return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg)
}

// Unwrap exposes the code's sentinel to errors.Is.
func (e *Error) Unwrap() error { return sentinel(e.Code) }

// Retryable reports whether the error may be retried.
func (e *Error) Retryable() bool { return Retryable(e.Code) }

// FromCode rehydrates a wire error (nil for CodeOK).
func FromCode(c Code, msg string) error {
	if c == CodeOK {
		return nil
	}
	return &Error{Code: c, Msg: msg}
}

// --- frame I/O -------------------------------------------------------------

// Frame is one decoded frame. Traced/TraceID/Hop reflect the TraceFlag
// bit: the readers strip the flag from Op and the trace extension (8-byte
// trace id, then the hop id uvarint) from Payload, so Op and Payload
// always carry their pre-trace meaning. Hop is the span id within a
// distributed trace: the coordinator numbers every request it fans out,
// and each participant echoes the hop on its traced response so stage
// timings stitch back into one tree tagged (trace id, hop, shard, opcode).
// Untraced frames carry neither field and are byte-identical to the
// pre-hop encoding.
type Frame struct {
	RequestID uint64
	Op        Op
	Payload   []byte
	TraceID   uint64
	Hop       uint32
	Traced    bool
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendFrame serializes a frame onto buf. A Traced frame gets the
// TraceFlag opcode bit, an 8-byte trace id, and a hop-id uvarint ahead of
// the payload.
func AppendFrame(buf []byte, f Frame) []byte {
	n := headerSize + len(f.Payload)
	op := f.Op
	if f.Traced {
		n += traceIDSize + uvarintLen(uint64(f.Hop))
		op |= TraceFlag
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = binary.BigEndian.AppendUint64(buf, f.RequestID)
	buf = append(buf, byte(op))
	if f.Traced {
		buf = binary.BigEndian.AppendUint64(buf, f.TraceID)
		buf = binary.AppendUvarint(buf, uint64(f.Hop))
	}
	return append(buf, f.Payload...)
}

// --- pooled buffers --------------------------------------------------------
//
// The frame path is the service's per-request hot loop: without reuse,
// every frame costs a payload allocation on read and a scratch buffer on
// write, and that churn is pure service-layer overhead on top of the wire
// itself. GetBuf/PutBuf expose one shared pool to the server's and
// client's write paths; FrameReader reuses a single payload buffer across
// reads. BenchmarkFrameRoundTrip pins the result at ~0 allocs/op.

// maxRetainedBuf bounds what a pooled (or FrameReader) buffer may retain:
// an occasional multi-megabyte scan result must not pin its high-water
// mark in every pool slot forever.
const maxRetainedBuf = 64 << 10

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf leases a reusable scratch buffer (length 0). Callers append, use,
// then PutBuf. The pointer indirection avoids per-Put allocations.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a leased buffer to the pool. Oversize buffers are dropped
// rather than retained.
func PutBuf(bp *[]byte) {
	if cap(*bp) > maxRetainedBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// WriteFrame writes one frame through a pooled scratch buffer: zero
// steady-state allocations.
func WriteFrame(w io.Writer, f Frame) error {
	bp := GetBuf()
	buf := AppendFrame((*bp)[:0], f)
	_, err := w.Write(buf)
	*bp = buf
	PutBuf(bp)
	return err
}

// FrameReader reads frames from one stream into a reusable payload buffer.
// The returned Frame's Payload aliases that buffer: it is valid only until
// the next Read. Callers that hand payload bytes to another goroutine (the
// client's response futures) must copy them first; callers that decode
// synchronously (the server's request loop -- row decoding copies) need
// not. One FrameReader serves one goroutine.
type FrameReader struct {
	r           io.Reader
	requestSide bool
	buf         []byte
	hdr         [4 + headerSize]byte // reused: a stack header would escape through the io.Reader call

	// OnFrameStart, when set, fires after a frame's 4-byte length prefix
	// has been read and before its body is read. The server uses it to
	// tighten the connection's read deadline: waiting for the next frame
	// is bounded by the idle budget, but once a frame has started arriving
	// its remainder must land within the per-frame read budget.
	OnFrameStart func()
}

// NewFrameReader builds a reader; requestSide selects which opcodes are
// legal exactly as in ReadFrame.
func NewFrameReader(r io.Reader, requestSide bool) *FrameReader {
	return &FrameReader{r: r, requestSide: requestSide, buf: make([]byte, 0, 4096)}
}

// Read reads one frame with the same validation and error contract as
// ReadFrame. The frame's Payload is only valid until the next Read.
func (fr *FrameReader) Read() (Frame, error) {
	hdr := fr.hdr[:]
	if _, err := io.ReadFull(fr.r, hdr[:4]); err != nil {
		return Frame{}, err // io.EOF if clean, ErrUnexpectedEOF if torn
	}
	if fr.OnFrameStart != nil {
		fr.OnFrameStart()
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < headerSize {
		return Frame{}, fmt.Errorf("%w: frame length %d below header size", ErrProtocol, n)
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: frame length %d exceeds max %d", ErrProtocol, n, MaxFrame)
	}
	if _, err := io.ReadFull(fr.r, hdr[4:]); err != nil {
		return Frame{}, unexpectedEOF(err)
	}
	op := Op(hdr[12])
	f := Frame{
		RequestID: binary.BigEndian.Uint64(hdr[4:12]),
		Op:        op &^ TraceFlag,
		Traced:    op&TraceFlag != 0,
	}
	if fr.requestSide && !validRequest(f.Op) {
		return Frame{}, fmt.Errorf("%w: unknown request opcode %d", ErrProtocol, uint8(f.Op))
	}
	if !fr.requestSide && f.Op != OpResponse {
		return Frame{}, fmt.Errorf("%w: expected response frame, got opcode %d", ErrProtocol, uint8(f.Op))
	}
	if rest := int(n) - headerSize; rest > 0 {
		if cap(fr.buf) < rest || cap(fr.buf) > maxRetainedBuf && rest <= maxRetainedBuf {
			// Grow to fit, or shrink back after an oversize frame so one
			// huge scan result does not pin its high-water mark.
			fr.buf = make([]byte, 0, max(rest, 4096))
		}
		fr.buf = fr.buf[:rest]
		if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
			return Frame{}, unexpectedEOF(err)
		}
		f.Payload = fr.buf
	}
	if err := stripTraceID(&f); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// stripTraceID moves a traced frame's trace extension (id prefix + hop
// uvarint) out of Payload.
func stripTraceID(f *Frame) error {
	if !f.Traced {
		return nil
	}
	if len(f.Payload) < traceIDSize {
		return fmt.Errorf("%w: traced frame too short for trace id", ErrProtocol)
	}
	f.TraceID = binary.BigEndian.Uint64(f.Payload)
	rest := f.Payload[traceIDSize:]
	hop, w := binary.Uvarint(rest)
	if w <= 0 || hop > math.MaxUint32 {
		return fmt.Errorf("%w: traced frame has no valid hop id", ErrProtocol)
	}
	f.Hop = uint32(hop)
	f.Payload = rest[w:]
	return nil
}

// ReadFrame reads one frame, enforcing MaxFrame and opcode validity.
// Violations return errors wrapping ErrProtocol: the caller must fail the
// connection. A clean EOF before the first length byte returns io.EOF; a
// torn frame (EOF mid-length or mid-payload) returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, requestSide bool) (Frame, error) {
	var hdr [4 + headerSize]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return Frame{}, err // io.EOF if clean, ErrUnexpectedEOF if torn
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < headerSize {
		return Frame{}, fmt.Errorf("%w: frame length %d below header size", ErrProtocol, n)
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: frame length %d exceeds max %d", ErrProtocol, n, MaxFrame)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return Frame{}, unexpectedEOF(err)
	}
	op := Op(hdr[12])
	f := Frame{
		RequestID: binary.BigEndian.Uint64(hdr[4:12]),
		Op:        op &^ TraceFlag,
		Traced:    op&TraceFlag != 0,
	}
	if requestSide && !validRequest(f.Op) {
		return Frame{}, fmt.Errorf("%w: unknown request opcode %d", ErrProtocol, uint8(f.Op))
	}
	if !requestSide && f.Op != OpResponse {
		return Frame{}, fmt.Errorf("%w: expected response frame, got opcode %d", ErrProtocol, uint8(f.Op))
	}
	if rest := int(n) - headerSize; rest > 0 {
		f.Payload = make([]byte, rest)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, unexpectedEOF(err)
		}
	}
	if err := stripTraceID(&f); err != nil {
		return Frame{}, err
	}
	return f, nil
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- payload encodings -----------------------------------------------------

// ErrPayloadCorrupt marks undecodable payloads; it is a protocol violation.
var ErrPayloadCorrupt = fmt.Errorf("%w: corrupt payload", ErrProtocol)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < n {
		return "", nil, ErrPayloadCorrupt
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], nil
}

// AppendExec appends an OpExec payload (sql then the argument row) to buf.
func AppendExec(buf []byte, sql string, args []core.Value) []byte {
	buf = appendString(buf, sql)
	return core.EncodeRow(buf, args)
}

// EncodeExec builds an OpExec payload: sql then the argument row.
func EncodeExec(sql string, args []core.Value) []byte {
	return AppendExec(nil, sql, args)
}

// DecodeExec parses an OpExec payload.
func DecodeExec(payload []byte) (sql string, args []core.Value, err error) {
	sql, rest, err := readString(payload)
	if err != nil {
		return "", nil, err
	}
	args, err = core.DecodeRow(rest)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrPayloadCorrupt, err)
	}
	return sql, args, nil
}

// --- prepared-statement payloads -------------------------------------------

// EncodePrepare builds an OpPrepare payload: the SQL text.
func EncodePrepare(sql string) []byte {
	return appendString(nil, sql)
}

// DecodePrepare parses an OpPrepare payload.
func DecodePrepare(payload []byte) (string, error) {
	sql, rest, err := readString(payload)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("%w: %d trailing bytes after prepare payload", ErrPayloadCorrupt, len(rest))
	}
	return sql, nil
}

// EncodePrepareResult builds the OpPrepare success body: the server-issued
// statement id and the statement's parameter count.
func EncodePrepareResult(id uint64, nParams int) []byte {
	buf := binary.AppendUvarint(nil, id)
	return binary.AppendUvarint(buf, uint64(nParams))
}

// DecodePrepareResult parses an OpPrepare success body.
func DecodePrepareResult(body []byte) (id uint64, nParams int, err error) {
	id, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, 0, ErrPayloadCorrupt
	}
	n, w2 := binary.Uvarint(body[w:])
	if w2 <= 0 || n > 1<<16 {
		return 0, 0, ErrPayloadCorrupt
	}
	return id, int(n), nil
}

// AppendExecStmt appends an OpExecStmt payload (stmt id then the argument
// row) to buf.
func AppendExecStmt(buf []byte, id uint64, args []core.Value) []byte {
	buf = binary.AppendUvarint(buf, id)
	return core.EncodeRow(buf, args)
}

// EncodeExecStmt builds an OpExecStmt payload.
func EncodeExecStmt(id uint64, args []core.Value) []byte {
	return AppendExecStmt(nil, id, args)
}

// DecodeExecStmt parses an OpExecStmt payload.
func DecodeExecStmt(payload []byte) (id uint64, args []core.Value, err error) {
	id, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, nil, ErrPayloadCorrupt
	}
	args, err = core.DecodeRow(payload[w:])
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrPayloadCorrupt, err)
	}
	return id, args, nil
}

// EncodeCloseStmt builds an OpCloseStmt payload: the stmt id.
func EncodeCloseStmt(id uint64) []byte {
	return binary.AppendUvarint(nil, id)
}

// DecodeCloseStmt parses an OpCloseStmt payload.
func DecodeCloseStmt(payload []byte) (uint64, error) {
	id, w := binary.Uvarint(payload)
	if w <= 0 || w != len(payload) {
		return 0, ErrPayloadCorrupt
	}
	return id, nil
}

// --- responses -------------------------------------------------------------

// Result is the wire form of a statement result.
type Result struct {
	Columns  []string
	Rows     []core.Row
	Affected int
}

// AppendResponse appends an OpResponse payload (code, message, body) to buf.
func AppendResponse(buf []byte, c Code, msg string, body []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(c))
	buf = appendString(buf, msg)
	return append(buf, body...)
}

// EncodeResponse builds an OpResponse payload: code, message, then (on
// success, per the request opcode) the body. body may be nil.
func EncodeResponse(c Code, msg string, body []byte) []byte {
	return AppendResponse(nil, c, msg, body)
}

// AppendResponseFrame appends a complete response frame -- length header,
// request id, OpResponse, then the code/msg/body payload -- onto buf in a
// single pass, back-patching the length. With a pooled buf this makes the
// server's response path allocation-free up to the body bytes themselves.
func AppendResponseFrame(buf []byte, reqID uint64, c Code, msg string, body []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, reqID)
	buf = append(buf, byte(OpResponse))
	buf = AppendResponse(buf, c, msg, body)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// AppendTracedResponseFrame appends a complete traced response frame:
// length header, request id, OpResponse|TraceFlag, the 8-byte trace id,
// the request's hop id echoed back as a uvarint, the stage-timing block
// for tr, then the code/msg/body payload. The client's frame reader strips
// the id and hop; DecodeTraceBlock then peels the stage block off the
// payload ahead of DecodeResponse. Single-pass with a length back-patch,
// like AppendResponseFrame.
func AppendTracedResponseFrame(buf []byte, reqID, traceID uint64, tr *obs.Trace, c Code, msg string, body []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, reqID)
	buf = append(buf, byte(OpResponse|TraceFlag))
	buf = binary.BigEndian.AppendUint64(buf, traceID)
	buf = binary.AppendUvarint(buf, uint64(tr.Hop()))
	buf = AppendTraceBlock(buf, tr)
	buf = AppendResponse(buf, c, msg, body)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// StageTiming is one stage of a server-returned trace.
type StageTiming struct {
	Stage   obs.Stage
	BeginNS int64
	DurNS   int64
}

// TraceInfo is the server's stage-timing block for one traced response.
// TotalNS is the server-side elapsed time when the response was encoded,
// which is what lets the client split network from server time. Hop is
// the request's span id echoed back from the frame; Shard identifies the
// reporting node when it serves a shard map (HasShard), so a coordinator
// can stitch fan-out responses into one tree.
type TraceInfo struct {
	TraceID  uint64
	Hop      uint32
	Shard    uint32
	HasShard bool
	TotalNS  int64
	Batch    int
	PlanHit  bool
	PlanMiss bool
	Stages   []StageTiming
}

// trace-block plan-cache flag bits.
const (
	traceFlagPlanHit  = 1 << 0
	traceFlagPlanMiss = 1 << 1
)

// AppendTraceBlock appends tr's stage timings in wire form: stage count
// (uvarint), then per stage {stage byte, begin uvarint, dur uvarint}, then
// total-so-far (uvarint), batch size (uvarint), a plan-cache flag byte,
// and the reporting node's shard identity as shard+1 (uvarint; 0 means the
// node serves no shard map). A nil trace encodes as an empty block.
// Allocation-free given capacity.
func AppendTraceBlock(buf []byte, tr *obs.Trace) []byte {
	n := 0
	tr.VisitStages(func(obs.Stage, int64, int64) { n++ })
	buf = binary.AppendUvarint(buf, uint64(n))
	tr.VisitStages(func(s obs.Stage, beginNS, durNS int64) {
		buf = append(buf, byte(s))
		buf = binary.AppendUvarint(buf, uint64(beginNS))
		buf = binary.AppendUvarint(buf, uint64(durNS))
	})
	buf = binary.AppendUvarint(buf, uint64(tr.Since()))
	buf = binary.AppendUvarint(buf, uint64(tr.Batch()))
	var flags byte
	hit, miss := tr.PlanCacheSeen()
	if hit {
		flags |= traceFlagPlanHit
	}
	if miss {
		flags |= traceFlagPlanMiss
	}
	buf = append(buf, flags)
	shardEnc := uint64(0)
	if shard, ok := tr.Shard(); ok {
		shardEnc = uint64(shard) + 1
	}
	return binary.AppendUvarint(buf, shardEnc)
}

// DecodeTraceBlock parses a stage-timing block off the front of a traced
// response payload, returning the info and the remaining payload (the
// standard code/msg/body response). The caller fills TraceID and Hop from
// the frame.
func DecodeTraceBlock(payload []byte) (*TraceInfo, []byte, error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(obs.NumStages) {
		return nil, nil, ErrPayloadCorrupt
	}
	payload = payload[w:]
	ti := &TraceInfo{}
	for i := uint64(0); i < n; i++ {
		if len(payload) < 1 {
			return nil, nil, ErrPayloadCorrupt
		}
		st := StageTiming{Stage: obs.Stage(payload[0])}
		payload = payload[1:]
		b, w := binary.Uvarint(payload)
		if w <= 0 {
			return nil, nil, ErrPayloadCorrupt
		}
		st.BeginNS = int64(b)
		payload = payload[w:]
		d, w := binary.Uvarint(payload)
		if w <= 0 {
			return nil, nil, ErrPayloadCorrupt
		}
		st.DurNS = int64(d)
		payload = payload[w:]
		ti.Stages = append(ti.Stages, st)
	}
	total, w := binary.Uvarint(payload)
	if w <= 0 {
		return nil, nil, ErrPayloadCorrupt
	}
	payload = payload[w:]
	batch, w := binary.Uvarint(payload)
	if w <= 0 || batch > 1<<24 {
		return nil, nil, ErrPayloadCorrupt
	}
	payload = payload[w:]
	if len(payload) < 1 {
		return nil, nil, ErrPayloadCorrupt
	}
	flags := payload[0]
	payload = payload[1:]
	shardEnc, w := binary.Uvarint(payload)
	if w <= 0 || shardEnc > 1<<32 {
		return nil, nil, ErrPayloadCorrupt
	}
	payload = payload[w:]
	ti.TotalNS = int64(total)
	ti.Batch = int(batch)
	ti.PlanHit = flags&traceFlagPlanHit != 0
	ti.PlanMiss = flags&traceFlagPlanMiss != 0
	if shardEnc > 0 {
		ti.Shard = uint32(shardEnc - 1)
		ti.HasShard = true
	}
	return ti, payload, nil
}

// DecodeResponse splits an OpResponse payload into code, message and body.
func DecodeResponse(payload []byte) (Code, string, []byte, error) {
	if len(payload) < 2 {
		return 0, "", nil, ErrPayloadCorrupt
	}
	c := Code(binary.BigEndian.Uint16(payload))
	msg, body, err := readString(payload[2:])
	if err != nil {
		return 0, "", nil, err
	}
	return c, msg, body, nil
}

// AppendResult appends a Result in response-body form to buf.
func AppendResult(buf []byte, r *Result) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Affected))
	buf = binary.AppendUvarint(buf, uint64(len(r.Columns)))
	for _, c := range r.Columns {
		buf = appendString(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		buf = core.EncodeRow(buf, row)
	}
	return buf
}

// EncodeResult serializes a Result as a response body.
func EncodeResult(r *Result) []byte {
	return AppendResult(nil, r)
}

// DecodeResult parses a Result body. Trailing bytes past the encoded result
// are ignored, which is what lets newer servers append a commit-CSN suffix
// (AppendResultCSN) without breaking older clients.
func DecodeResult(body []byte) (*Result, error) {
	r, _, err := decodeResult(body)
	return r, err
}

// AppendResultCSN appends a Result followed by the session's last commit
// CSN. Decoders that know about the suffix recover it with DecodeResultCSN;
// older decoders ignore it.
func AppendResultCSN(buf []byte, r *Result, csn uint64) []byte {
	buf = AppendResult(buf, r)
	return binary.AppendUvarint(buf, csn)
}

// DecodeResultCSN parses a Result body plus the optional trailing commit
// CSN (0 when the server did not send one).
func DecodeResultCSN(body []byte) (*Result, uint64, error) {
	r, rest, err := decodeResult(body)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) == 0 {
		return r, 0, nil
	}
	csn, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, 0, ErrPayloadCorrupt
	}
	return r, csn, nil
}

func decodeResult(body []byte) (*Result, []byte, error) {
	affected, w := binary.Uvarint(body)
	if w <= 0 {
		return nil, nil, ErrPayloadCorrupt
	}
	body = body[w:]
	nCols, w := binary.Uvarint(body)
	if w <= 0 || nCols > 1<<16 {
		return nil, nil, ErrPayloadCorrupt
	}
	body = body[w:]
	r := &Result{Affected: int(affected)}
	for i := uint64(0); i < nCols; i++ {
		var c string
		var err error
		c, body, err = readString(body)
		if err != nil {
			return nil, nil, err
		}
		r.Columns = append(r.Columns, c)
	}
	nRows, w := binary.Uvarint(body)
	if w <= 0 || nRows > 1<<24 {
		return nil, nil, ErrPayloadCorrupt
	}
	body = body[w:]
	for i := uint64(0); i < nRows; i++ {
		row, rest, err := core.DecodeRowPrefix(body)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrPayloadCorrupt, err)
		}
		body = rest
		r.Rows = append(r.Rows, row)
	}
	return r, body, nil
}

// --- streaming-scan payloads -------------------------------------------------

// MaxFetchSize bounds the per-page row count a scan request may ask for.
// Pages are additionally bounded by bytes on the server, so this only has
// to keep a garbage fetch size from pre-sizing absurd buffers.
const MaxFetchSize = 1 << 20

// AppendScanOpen appends an OpScanOpen payload: the requested fetch size
// (rows per page; 0 lets the server pick its default), then sql and the
// argument row, exactly as OpExec carries them.
func AppendScanOpen(buf []byte, fetchSize int, sql string, args []core.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(fetchSize))
	return AppendExec(buf, sql, args)
}

// EncodeScanOpen builds an OpScanOpen payload.
func EncodeScanOpen(fetchSize int, sql string, args []core.Value) []byte {
	return AppendScanOpen(nil, fetchSize, sql, args)
}

// DecodeScanOpen parses an OpScanOpen payload.
func DecodeScanOpen(payload []byte) (fetchSize int, sql string, args []core.Value, err error) {
	fs, w := binary.Uvarint(payload)
	if w <= 0 || fs > MaxFetchSize {
		return 0, "", nil, ErrPayloadCorrupt
	}
	sql, args, err = DecodeExec(payload[w:])
	return int(fs), sql, args, err
}

// EncodeScanNext builds an OpScanNext payload: cursor id, then the fetch
// size for this page (0 keeps the cursor's current size).
func EncodeScanNext(id uint64, fetchSize int) []byte {
	buf := binary.AppendUvarint(nil, id)
	return binary.AppendUvarint(buf, uint64(fetchSize))
}

// DecodeScanNext parses an OpScanNext payload.
func DecodeScanNext(payload []byte) (id uint64, fetchSize int, err error) {
	id, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, 0, ErrPayloadCorrupt
	}
	fs, w2 := binary.Uvarint(payload[w:])
	if w2 <= 0 || w+w2 != len(payload) || fs > MaxFetchSize {
		return 0, 0, ErrPayloadCorrupt
	}
	return id, int(fs), nil
}

// EncodeScanClose builds an OpScanClose payload: the cursor id.
func EncodeScanClose(id uint64) []byte { return binary.AppendUvarint(nil, id) }

// DecodeScanClose parses an OpScanClose payload.
func DecodeScanClose(payload []byte) (uint64, error) { return DecodeCloseStmt(payload) }

// AppendCursorPage appends a cursor-page response body (the success body of
// OpScanOpen and OpScanNext): cursor id, done flag, then a Result whose
// rows arrive pre-encoded -- rowData must hold exactly nRows core.EncodeRow
// encodings. Taking the rows in encoded form lets the server bound a page
// by bytes while it pulls rows, without encoding everything twice.
func AppendCursorPage(buf []byte, id uint64, done bool, cols []string, nRows int, rowData []byte) []byte {
	buf = binary.AppendUvarint(buf, id)
	if done {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, 0) // affected: a scan mutates nothing
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendString(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(nRows))
	return append(buf, rowData...)
}

// DecodeCursorPage parses a cursor-page body. done=true means the server
// exhausted the scan and already closed the cursor; the client must not
// send OpScanNext or OpScanClose for it.
func DecodeCursorPage(body []byte) (id uint64, done bool, r *Result, err error) {
	id, w := binary.Uvarint(body)
	if w <= 0 || len(body) < w+1 || body[w] > 1 {
		return 0, false, nil, ErrPayloadCorrupt
	}
	done = body[w] == 1
	r, rest, err := decodeResult(body[w+1:])
	if err != nil {
		return 0, false, nil, err
	}
	if len(rest) != 0 {
		return 0, false, nil, ErrPayloadCorrupt
	}
	return id, done, r, nil
}

// --- batch-exec payloads -----------------------------------------------------

// BatchStmt is one statement of an OpExecBatch payload.
type BatchStmt struct {
	SQL  string
	Args []core.Value
}

// MaxBatch bounds the statement count of one OpExecBatch frame.
const MaxBatch = 1 << 16

// AppendExecBatch appends an OpExecBatch payload: the statement count, then
// each statement exactly as OpExec carries it (sql, args row).
func AppendExecBatch(buf []byte, stmts []BatchStmt) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(stmts)))
	for _, st := range stmts {
		buf = AppendExec(buf, st.SQL, st.Args)
	}
	return buf
}

// EncodeExecBatch builds an OpExecBatch payload.
func EncodeExecBatch(stmts []BatchStmt) []byte { return AppendExecBatch(nil, stmts) }

// DecodeExecBatch parses an OpExecBatch payload. Empty batches are a
// payload error: there is nothing to answer durability for.
func DecodeExecBatch(payload []byte) ([]BatchStmt, error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n == 0 || n > MaxBatch {
		return nil, ErrPayloadCorrupt
	}
	payload = payload[w:]
	out := make([]BatchStmt, 0, n)
	for i := uint64(0); i < n; i++ {
		sql, rest, err := readString(payload)
		if err != nil {
			return nil, err
		}
		args, rest2, err := core.DecodeRowPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPayloadCorrupt, err)
		}
		out = append(out, BatchStmt{SQL: sql, Args: args})
		payload = rest2
	}
	if len(payload) != 0 {
		return nil, ErrPayloadCorrupt
	}
	return out, nil
}

// AppendBatchResult appends the OpExecBatch success body: the
// per-statement affected-row vector, then the session's last commit CSN
// (the batch's own commit when it ran outside an explicit transaction).
func AppendBatchResult(buf []byte, affected []int, csn uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(affected)))
	for _, a := range affected {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	return binary.AppendUvarint(buf, csn)
}

// DecodeBatchResult parses an OpExecBatch success body.
func DecodeBatchResult(body []byte) (affected []int, csn uint64, err error) {
	n, w := binary.Uvarint(body)
	if w <= 0 || n > MaxBatch {
		return nil, 0, ErrPayloadCorrupt
	}
	body = body[w:]
	affected = make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		a, w2 := binary.Uvarint(body)
		if w2 <= 0 {
			return nil, 0, ErrPayloadCorrupt
		}
		affected = append(affected, int(a))
		body = body[w2:]
	}
	csn, w = binary.Uvarint(body)
	if w <= 0 || w != len(body) {
		return nil, 0, ErrPayloadCorrupt
	}
	return affected, csn, nil
}

// --- greeting --------------------------------------------------------------

// Server roles carried in the connection greeting.
const (
	RolePrimary byte = 0
	RoleReplica byte = 1
)

// greetingMagic distinguishes a greeting body from other RequestID-0
// responses.
var greetingMagic = [4]byte{'H', 'I', 'G', 'R'}

// EncodeGreeting builds the server greeting body: magic, the server's role,
// (for a replica) the primary's address so a client connected only to
// the replica can find the write endpoint, and the node's current primary
// epoch so failing-over clients can tell a promoted node from a stale one.
// The greeting travels as an unsolicited CodeOK response with RequestID 0
// immediately after accept; clients that predate it ignore unknown-ID OK
// frames, so it is backward-compatible, and the epoch rides as a trailing
// uvarint that pre-epoch decoders never read.
func EncodeGreeting(role byte, primaryAddr string, epoch uint64) []byte {
	buf := append([]byte(nil), greetingMagic[:]...)
	buf = append(buf, role)
	buf = appendString(buf, primaryAddr)
	return binary.AppendUvarint(buf, epoch)
}

// DecodeGreeting parses a greeting body. ok is false when the body is not a
// greeting (some other RequestID-0 response). A greeting from a pre-epoch
// server decodes with epoch 0 (no epoch claim).
func DecodeGreeting(body []byte) (role byte, primaryAddr string, epoch uint64, ok bool) {
	if len(body) < 5 || [4]byte(body[:4]) != greetingMagic {
		return 0, "", 0, false
	}
	role = body[4]
	primaryAddr, rest, err := readString(body[5:])
	if err != nil {
		return 0, "", 0, false
	}
	if len(rest) > 0 {
		e, w := binary.Uvarint(rest)
		if w <= 0 || w != len(rest) {
			return 0, "", 0, false
		}
		epoch = e
	}
	return role, primaryAddr, epoch, true
}

// --- read-your-writes exec -------------------------------------------------

// AppendExecAt appends an OpExecAt payload: the read-your-writes token (the
// client's last-seen commit CSN), then sql and the argument row.
func AppendExecAt(buf []byte, minCSN uint64, sql string, args []core.Value) []byte {
	buf = binary.AppendUvarint(buf, minCSN)
	return AppendExec(buf, sql, args)
}

// EncodeExecAt builds an OpExecAt payload.
func EncodeExecAt(minCSN uint64, sql string, args []core.Value) []byte {
	return AppendExecAt(nil, minCSN, sql, args)
}

// DecodeExecAt parses an OpExecAt payload.
func DecodeExecAt(payload []byte) (minCSN uint64, sql string, args []core.Value, err error) {
	minCSN, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, "", nil, ErrPayloadCorrupt
	}
	sql, args, err = DecodeExec(payload[w:])
	return minCSN, sql, args, err
}

// --- log-shipping payloads -------------------------------------------------

// PLogStat is the wire form of one primary PLog's state, enough for a
// shipper to mirror it: identity, placement tier, durable size, and the
// sealed/torn flags that gate tail classification on the follower.
type PLogStat struct {
	ID     srss.PLogID
	Tier   srss.Tier
	Size   int64
	Sealed bool
	Torn   bool
}

// plog stat flag bits.
const (
	plogFlagSealed = 1 << 0
	plogFlagTorn   = 1 << 1
)

func appendPLogStat(buf []byte, st PLogStat) []byte {
	buf = append(buf, st.ID[:]...)
	buf = append(buf, byte(st.Tier))
	var flags byte
	if st.Sealed {
		flags |= plogFlagSealed
	}
	if st.Torn {
		flags |= plogFlagTorn
	}
	buf = append(buf, flags)
	return binary.AppendUvarint(buf, uint64(st.Size))
}

func readPLogStat(buf []byte) (PLogStat, []byte, error) {
	var st PLogStat
	if len(buf) < len(st.ID)+2 {
		return st, nil, ErrPayloadCorrupt
	}
	copy(st.ID[:], buf)
	buf = buf[len(st.ID):]
	st.Tier = srss.Tier(buf[0])
	flags := buf[1]
	st.Sealed = flags&plogFlagSealed != 0
	st.Torn = flags&plogFlagTorn != 0
	size, w := binary.Uvarint(buf[2:])
	if w <= 0 {
		return st, nil, ErrPayloadCorrupt
	}
	st.Size = int64(size)
	return st, buf[2+w:], nil
}

// EncodeReplHelloReq builds an OpReplHello request payload: the caller's
// highest observed primary epoch. Pre-epoch shippers send an empty payload,
// which decodes as epoch 0 (no claim). A promoted primary also uses this to
// fence its predecessor: presenting the new epoch forces the old node to
// demote on receipt.
func EncodeReplHelloReq(epoch uint64) []byte {
	return binary.AppendUvarint(nil, epoch)
}

// DecodeReplHelloReq parses an OpReplHello request payload.
func DecodeReplHelloReq(payload []byte) (epoch uint64, err error) {
	if len(payload) == 0 {
		return 0, nil
	}
	e, w := binary.Uvarint(payload)
	if w <= 0 || w != len(payload) {
		return 0, ErrPayloadCorrupt
	}
	return e, nil
}

// EncodeReplHello builds the OpReplHello success body: the primary's
// manifest PLog ID, its current commit CSN, and its primary epoch (a
// trailing uvarint pre-epoch decoders ignore).
func EncodeReplHello(manifest srss.PLogID, csn uint64, epoch uint64) []byte {
	buf := append([]byte(nil), manifest[:]...)
	buf = binary.AppendUvarint(buf, csn)
	return binary.AppendUvarint(buf, epoch)
}

// DecodeReplHello parses an OpReplHello success body. A body from a
// pre-epoch primary decodes with epoch 0.
func DecodeReplHello(body []byte) (manifest srss.PLogID, csn uint64, epoch uint64, err error) {
	if len(body) < len(manifest) {
		return manifest, 0, 0, ErrPayloadCorrupt
	}
	copy(manifest[:], body)
	csn, w := binary.Uvarint(body[len(manifest):])
	if w <= 0 {
		return manifest, 0, 0, ErrPayloadCorrupt
	}
	if rest := body[len(manifest)+w:]; len(rest) > 0 {
		e, w2 := binary.Uvarint(rest)
		if w2 <= 0 {
			return manifest, 0, 0, ErrPayloadCorrupt
		}
		epoch = e
	}
	return manifest, csn, epoch, nil
}

// EncodeReplList builds the OpReplList success body: every PLog the primary
// currently holds.
func EncodeReplList(stats []PLogStat) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(stats)))
	for _, st := range stats {
		buf = appendPLogStat(buf, st)
	}
	return buf
}

// DecodeReplList parses an OpReplList success body.
func DecodeReplList(body []byte) ([]PLogStat, error) {
	n, w := binary.Uvarint(body)
	if w <= 0 || n > 1<<20 {
		return nil, ErrPayloadCorrupt
	}
	body = body[w:]
	out := make([]PLogStat, 0, n)
	for i := uint64(0); i < n; i++ {
		st, rest, err := readPLogStat(body)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		body = rest
	}
	return out, nil
}

// EncodeReplFetch builds an OpReplFetch request payload: which PLog, from
// which offset, at most how many bytes, and the caller's observed primary
// epoch (trailing uvarint; pre-epoch decoders never read it).
func EncodeReplFetch(id srss.PLogID, offset int64, maxBytes int, epoch uint64) []byte {
	buf := append([]byte(nil), id[:]...)
	buf = binary.AppendUvarint(buf, uint64(offset))
	buf = binary.AppendUvarint(buf, uint64(maxBytes))
	return binary.AppendUvarint(buf, epoch)
}

// DecodeReplFetch parses an OpReplFetch request payload. A payload from a
// pre-epoch shipper decodes with epoch 0 (no claim).
func DecodeReplFetch(payload []byte) (id srss.PLogID, offset int64, maxBytes int, epoch uint64, err error) {
	if len(payload) < len(id) {
		return id, 0, 0, 0, ErrPayloadCorrupt
	}
	copy(id[:], payload)
	payload = payload[len(id):]
	off, w := binary.Uvarint(payload)
	if w <= 0 {
		return id, 0, 0, 0, ErrPayloadCorrupt
	}
	mx, w2 := binary.Uvarint(payload[w:])
	if w2 <= 0 || mx > MaxPayload {
		return id, 0, 0, 0, ErrPayloadCorrupt
	}
	if rest := payload[w+w2:]; len(rest) > 0 {
		e, w3 := binary.Uvarint(rest)
		if w3 <= 0 {
			return id, 0, 0, 0, ErrPayloadCorrupt
		}
		epoch = e
	}
	return id, int64(off), int(mx), epoch, nil
}

// EncodeReplChunk builds the OpReplFetch success body: the PLog's current
// stat (so the shipper can seal its mirror the moment it holds all bytes of
// a sealed PLog) followed by the data chunk read at the requested offset.
func EncodeReplChunk(st PLogStat, data []byte) []byte {
	buf := appendPLogStat(nil, st)
	return append(buf, data...)
}

// DecodeReplChunk parses an OpReplFetch success body. The returned data
// aliases body.
func DecodeReplChunk(body []byte) (PLogStat, []byte, error) {
	st, rest, err := readPLogStat(body)
	if err != nil {
		return st, nil, err
	}
	return st, rest, nil
}

// --- sharding payloads -------------------------------------------------------

// ShardMap is the wire form of a cluster's static topology: a versioned
// shard-id -> node-address table. Records route to shards by hashing their
// primary key (internal/shard owns the hash); the map only names who serves
// each shard. SelfID is the serving node's own shard id, so a client that
// bootstrapped from one member knows which slice of the key space that
// member owns.
type ShardMap struct {
	Version uint64
	SelfID  uint32
	Addrs   []string // index = shard id
}

// EncodeShardMapReq builds an OpShardMap request payload. An empty
// expectation (expect=false) just fetches the map; with expect=true the
// request asserts the caller believes it is talking to shard id -- the
// server answers CodeWrongShard on a mismatch, which is how a router
// detects a stale map before running a transaction on the wrong node.
func EncodeShardMapReq(expect bool, id uint32) []byte {
	if !expect {
		return nil
	}
	return binary.AppendUvarint(nil, uint64(id))
}

// DecodeShardMapReq parses an OpShardMap request payload.
func DecodeShardMapReq(payload []byte) (expect bool, id uint32, err error) {
	if len(payload) == 0 {
		return false, 0, nil
	}
	v, w := binary.Uvarint(payload)
	if w <= 0 || w != len(payload) || v > 1<<31 {
		return false, 0, ErrPayloadCorrupt
	}
	return true, uint32(v), nil
}

// EncodeShardMap builds the OpShardMap success body.
func EncodeShardMap(m *ShardMap) []byte {
	buf := binary.AppendUvarint(nil, m.Version)
	buf = binary.AppendUvarint(buf, uint64(m.SelfID))
	buf = binary.AppendUvarint(buf, uint64(len(m.Addrs)))
	for _, a := range m.Addrs {
		buf = appendString(buf, a)
	}
	return buf
}

// DecodeShardMap parses an OpShardMap success body.
func DecodeShardMap(body []byte) (*ShardMap, error) {
	ver, w := binary.Uvarint(body)
	if w <= 0 {
		return nil, ErrPayloadCorrupt
	}
	body = body[w:]
	self, w := binary.Uvarint(body)
	if w <= 0 || self > 1<<31 {
		return nil, ErrPayloadCorrupt
	}
	body = body[w:]
	n, w := binary.Uvarint(body)
	if w <= 0 || n == 0 || n > 1<<16 {
		return nil, ErrPayloadCorrupt
	}
	body = body[w:]
	m := &ShardMap{Version: ver, SelfID: uint32(self), Addrs: make([]string, 0, n)}
	for i := uint64(0); i < n; i++ {
		var a string
		var err error
		a, body, err = readString(body)
		if err != nil {
			return nil, err
		}
		m.Addrs = append(m.Addrs, a)
	}
	return m, nil
}

// --- 2PC payloads ------------------------------------------------------------

// Prepare vote flags returned in the OpTxnPrepare success body.
const (
	// PreparedWrites: the transaction's writes are prepared and durable;
	// the coordinator owes this participant a decision.
	PreparedWrites byte = 0
	// PreparedReadOnly: the transaction read but wrote nothing here; it
	// committed locally at prepare time and needs no decision.
	PreparedReadOnly byte = 1
)

// EncodeTxnPrepare builds an OpTxnPrepare payload: the global transaction
// id under which the open session transaction prepares.
func EncodeTxnPrepare(gtid string) []byte {
	return appendString(nil, gtid)
}

// DecodeTxnPrepare parses an OpTxnPrepare payload.
func DecodeTxnPrepare(payload []byte) (string, error) {
	gtid, rest, err := readString(payload)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 || gtid == "" {
		return "", ErrPayloadCorrupt
	}
	return gtid, nil
}

// EncodeTxnDecide builds an OpTxnDecide payload: the gtid and the
// coordinator's decision.
func EncodeTxnDecide(gtid string, commit bool) []byte {
	buf := appendString(nil, gtid)
	if commit {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// DecodeTxnDecide parses an OpTxnDecide payload.
func DecodeTxnDecide(payload []byte) (gtid string, commit bool, err error) {
	gtid, rest, err := readString(payload)
	if err != nil {
		return "", false, err
	}
	if len(rest) != 1 || rest[0] > 1 || gtid == "" {
		return "", false, ErrPayloadCorrupt
	}
	return gtid, rest[0] == 1, nil
}

// EncodeTxnStatus builds an OpTxnStatus payload (and, with the same shape,
// DecodeTxnStatus parses it): the gtid being asked about.
func EncodeTxnStatus(gtid string) []byte { return appendString(nil, gtid) }

// DecodeTxnStatus parses an OpTxnStatus payload.
func DecodeTxnStatus(payload []byte) (string, error) { return DecodeTxnPrepare(payload) }

// Transaction outcome states carried in the OpTxnStatus success body. The
// values are wire-stable. TxnUnknown means the participant has no memory of
// the gtid at all -- under presumed abort a coordinator treats it exactly
// like TxnAborted, but the distinction is kept on the wire for diagnostics.
const (
	TxnUnknown   byte = 0
	TxnInDoubt   byte = 1
	TxnCommitted byte = 2
	TxnAborted   byte = 3
)

// EncodeTxnState builds the OpTxnStatus success body: outcome state plus the
// commit CSN (0 unless committed).
func EncodeTxnState(state byte, csn uint64) []byte {
	return binary.AppendUvarint([]byte{state}, csn)
}

// DecodeTxnState parses an OpTxnStatus success body.
func DecodeTxnState(body []byte) (byte, uint64, error) {
	if len(body) < 2 || body[0] > TxnAborted {
		return 0, 0, ErrPayloadCorrupt
	}
	csn, w := binary.Uvarint(body[1:])
	if w <= 0 || 1+w != len(body) {
		return 0, 0, ErrPayloadCorrupt
	}
	return body[0], csn, nil
}

// EncodeTxnCSN builds the uvarint commit-CSN body carried by successful
// OpTxnDecide and OpTxnStatus responses (0 for an abort decision).
func EncodeTxnCSN(csn uint64) []byte { return binary.AppendUvarint(nil, csn) }

// DecodeTxnCSN parses a commit-CSN body. An empty body decodes as 0.
func DecodeTxnCSN(body []byte) (uint64, error) {
	if len(body) == 0 {
		return 0, nil
	}
	csn, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, ErrPayloadCorrupt
	}
	return csn, nil
}

// EncodeTxnForget builds an OpTxnForget payload: the gtid to prune.
func EncodeTxnForget(gtid string) []byte { return appendString(nil, gtid) }

// DecodeTxnForget parses an OpTxnForget payload.
func DecodeTxnForget(payload []byte) (string, error) { return DecodeTxnPrepare(payload) }

// EncodeGTIDList builds the OpTxnRecover success body: the participant's
// in-doubt gtids.
func EncodeGTIDList(gtids []string) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(gtids)))
	for _, g := range gtids {
		buf = appendString(buf, g)
	}
	return buf
}

// DecodeGTIDList parses an OpTxnRecover success body.
func DecodeGTIDList(body []byte) ([]string, error) {
	n, w := binary.Uvarint(body)
	if w <= 0 || n > 1<<20 {
		return nil, ErrPayloadCorrupt
	}
	body = body[w:]
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var g string
		var err error
		g, body, err = readString(body)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if len(body) != 0 {
		return nil, ErrPayloadCorrupt
	}
	return out, nil
}
