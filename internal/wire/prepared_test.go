package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hiengine/internal/core"
)

// TestPreparedCodecs round-trips the prepared-statement payloads.
func TestPreparedCodecs(t *testing.T) {
	sql := "SELECT v FROM t WHERE id = ?"
	got, err := DecodePrepare(EncodePrepare(sql))
	if err != nil || got != sql {
		t.Fatalf("prepare round trip: %q %v", got, err)
	}
	if _, err := DecodePrepare(append(EncodePrepare(sql), 0xff)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("trailing bytes must be corrupt, got %v", err)
	}

	id, n, err := DecodePrepareResult(EncodePrepareResult(42, 3))
	if err != nil || id != 42 || n != 3 {
		t.Fatalf("prepare result round trip: %d %d %v", id, n, err)
	}
	if _, _, err := DecodePrepareResult(nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("empty prepare result must be corrupt, got %v", err)
	}

	args := []core.Value{core.I(7), core.S("x")}
	gid, gargs, err := DecodeExecStmt(EncodeExecStmt(9, args))
	if err != nil || gid != 9 || len(gargs) != 2 || !gargs[0].Equal(args[0]) || !gargs[1].Equal(args[1]) {
		t.Fatalf("exec stmt round trip: %d %+v %v", gid, gargs, err)
	}
	if _, _, err := DecodeExecStmt([]byte{0x80}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated exec stmt must be corrupt, got %v", err)
	}

	cid, err := DecodeCloseStmt(EncodeCloseStmt(13))
	if err != nil || cid != 13 {
		t.Fatalf("close stmt round trip: %d %v", cid, err)
	}
	if _, err := DecodeCloseStmt(append(EncodeCloseStmt(13), 1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("close stmt trailing bytes must be corrupt, got %v", err)
	}
}

// TestPreparedOpcodesValid checks the new opcodes pass request-side frame
// validation and OpResponse still does not.
func TestPreparedOpcodesValid(t *testing.T) {
	for _, op := range []Op{OpPrepare, OpExecStmt, OpCloseStmt} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{RequestID: 1, Op: op, Payload: []byte{1}}); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(&buf, true)
		if err != nil {
			t.Fatalf("%v rejected on the request side: %v", op, err)
		}
		if f.Op != op {
			t.Fatalf("opcode mangled: %v -> %v", op, f.Op)
		}
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{RequestID: 1, Op: OpPrepare}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, false); !errors.Is(err, ErrProtocol) {
		t.Fatalf("request opcode on the response side must be a violation, got %v", err)
	}
}

// TestFrameReaderReuse checks that FrameReader preserves ReadFrame's
// contract while reusing its payload buffer across frames.
func TestFrameReaderReuse(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{RequestID: 1, Op: OpExec, Payload: bytes.Repeat([]byte{0xaa}, 100)},
		{RequestID: 2, Op: OpPing},
		{RequestID: 3, Op: OpExecStmt, Payload: bytes.Repeat([]byte{0xbb}, 5000)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf, true)
	starts := 0
	fr.OnFrameStart = func() { starts++ }
	for i, want := range frames {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.RequestID != want.RequestID || got.Op != want.Op || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
	if starts != len(frames) {
		t.Fatalf("OnFrameStart fired %d times, want %d", starts, len(frames))
	}
	if _, err := fr.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF, got %v", err)
	}

	// Violations surface identically to ReadFrame.
	fr = NewFrameReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), true)
	if _, err := fr.Read(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversize length must be a violation, got %v", err)
	}
	fr = NewFrameReader(bytes.NewReader([]byte{0, 0}), true)
	if _, err := fr.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn length must be unexpected EOF, got %v", err)
	}
}

// TestFrameReaderShrinksAfterOversize checks one huge frame does not pin
// its high-water buffer forever.
func TestFrameReaderShrinksAfterOversize(t *testing.T) {
	var buf bytes.Buffer
	big := Frame{RequestID: 1, Op: OpExec, Payload: make([]byte, 1<<20)}
	small := Frame{RequestID: 2, Op: OpExec, Payload: []byte{1, 2, 3}}
	WriteFrame(&buf, big)
	WriteFrame(&buf, small)
	fr := NewFrameReader(&buf, true)
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	if cap(fr.buf) > maxRetainedBuf {
		t.Fatalf("reader retained %d-byte buffer after oversize frame (bound %d)", cap(fr.buf), maxRetainedBuf)
	}
}

// TestAppendResponseFrame checks the single-pass frame builder agrees with
// the compositional encoders byte for byte.
func TestAppendResponseFrame(t *testing.T) {
	body := EncodeResult(&Result{Affected: 2, Columns: []string{"a"}, Rows: []core.Row{{core.I(1)}}})
	want := AppendFrame(nil, Frame{RequestID: 77, Op: OpResponse, Payload: EncodeResponse(CodeConflict, "boom", body)})
	got := AppendResponseFrame(nil, 77, CodeConflict, "boom", body)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendResponseFrame diverges from AppendFrame+EncodeResponse:\n%x\n%x", got, want)
	}
}

// nullWriter consumes bytes without retaining them.
type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestFrameRoundTripAllocs is the allocation regression: the steady-state
// frame path (pooled write, reusable-buffer read) must not allocate per
// frame. A tiny epsilon absorbs one-time pool warmup.
func TestFrameRoundTripAllocs(t *testing.T) {
	payload := EncodeExec("INSERT INTO t VALUES (?, ?)", []core.Value{core.I(1), core.S("v")})
	var stream bytes.Buffer
	f := Frame{RequestID: 1, Op: OpExec, Payload: payload}
	fr := NewFrameReader(&stream, true)
	// Warm up pool and reader buffer.
	for i := 0; i < 4; i++ {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
		if _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
		if _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.1 {
		t.Fatalf("frame round trip allocates %.2f allocs/op, want ~0", avg)
	}
}

// BenchmarkFrameRoundTrip measures the pooled frame path; run with
// -benchmem to see the allocs/op figure the regression test asserts.
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := EncodeExec("INSERT INTO t VALUES (?, ?)", []core.Value{core.I(1), core.S("v")})
	var stream bytes.Buffer
	f := Frame{RequestID: 1, Op: OpExec, Payload: payload}
	fr := NewFrameReader(&stream, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.RequestID = uint64(i)
		if err := WriteFrame(&stream, f); err != nil {
			b.Fatal(err)
		}
		if _, err := fr.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameWriteOnly isolates the send path (frame assembly into a
// pooled buffer + write).
func BenchmarkFrameWriteOnly(b *testing.B) {
	payload := EncodeExec("SELECT v FROM t WHERE id = ?", []core.Value{core.I(42)})
	f := Frame{RequestID: 7, Op: OpExec, Payload: payload}
	var w nullWriter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(w, f); err != nil {
			b.Fatal(err)
		}
	}
}
