package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hiengine/internal/obs"
)

func TestTracedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	f := Frame{
		RequestID: 77,
		Op:        OpCommit,
		Payload:   []byte("body"),
		Traced:    true,
		TraceID:   0xdeadbeefcafe,
		Hop:       300, // forces a multi-byte hop uvarint
	}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Traced || got.TraceID != f.TraceID || got.Hop != 300 || got.Op != OpCommit ||
		got.RequestID != 77 || string(got.Payload) != "body" {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// The streaming reader agrees.
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()), true)
	got2, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Traced || got2.TraceID != f.TraceID || got2.Hop != 300 || string(got2.Payload) != "body" {
		t.Fatalf("FrameReader mismatch: %+v", got2)
	}
}

func TestTracedFrameGoldenLayout(t *testing.T) {
	// The traced-frame extension is frozen: traceID (8 bytes BE) then the
	// hop id as a uvarint, between the header and the payload, with the
	// trace flag on the opcode and the extension counted in length.
	f := Frame{
		RequestID: 7,
		Op:        OpCommit,
		Payload:   []byte{0xAA},
		Traced:    true,
		TraceID:   0x0102030405060708,
		Hop:       5,
	}
	got := AppendFrame(nil, f)
	want := []byte{
		0, 0, 0, 19, // length: 9 header + 8 trace id + 1 hop + 1 payload
		0, 0, 0, 0, 0, 0, 0, 7, // request id
		byte(OpCommit) | byte(TraceFlag), // opcode with trace flag
		1, 2, 3, 4, 5, 6, 7, 8,           // trace id
		5,    // hop uvarint
		0xAA, // payload
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("traced encoding changed:\n got % x\nwant % x", got, want)
	}
}

func TestUntracedFrameBytesUnchanged(t *testing.T) {
	// An untraced frame must be byte-identical to the pre-trace encoding:
	// untraced requests pay zero extra bytes.
	f := Frame{RequestID: 5, Op: OpPing}
	buf := AppendFrame(nil, f)
	want := []byte{0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 5, byte(OpPing)}
	if !bytes.Equal(buf, want) {
		t.Fatalf("untraced encoding changed: % x, want % x", buf, want)
	}
}

func TestTracedFrameTooShort(t *testing.T) {
	// A traced frame whose payload cannot hold the trace id is a protocol
	// violation, not a panic.
	raw := []byte{0, 0, 0, 13, 0, 0, 0, 0, 0, 0, 0, 1, byte(OpPing | TraceFlag), 1, 2, 3, 4}
	_, err := ReadFrame(bytes.NewReader(raw), true)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
	fr := NewFrameReader(bytes.NewReader(raw), true)
	if _, err := fr.Read(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("FrameReader err = %v, want ErrProtocol", err)
	}
}

func TestTraceBlockRoundTrip(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	tr := tracer.Start(99, true)
	tr.Begin(obs.StageFrameRead)
	time.Sleep(100 * time.Microsecond)
	tr.End(obs.StageFrameRead)
	tr.Begin(obs.StageExec)
	tr.End(obs.StageExec)
	tr.AddSpan(obs.StageSRSSReplicate, 500, 1000)
	tr.SetBatch(3)
	tr.PlanCache(true)
	tr.PlanCache(false)

	tr.SetHop(4)
	tr.SetShard(2)

	body := []byte("result")
	frameBuf := AppendTracedResponseFrame(nil, 11, tr.ID(), tr, CodeOK, "", body)
	tr.Discard()

	f, err := ReadFrame(bytes.NewReader(frameBuf), false)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Traced || f.TraceID != 99 || f.Op != OpResponse {
		t.Fatalf("frame: %+v", f)
	}
	if f.Hop != 4 {
		t.Fatalf("traced response hop = %d, want the unit's hop 4", f.Hop)
	}
	ti, rest, err := DecodeTraceBlock(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Batch != 3 || !ti.PlanHit || !ti.PlanMiss || ti.TotalNS <= 0 {
		t.Fatalf("trace info: %+v", ti)
	}
	if !ti.HasShard || ti.Shard != 2 {
		t.Fatalf("shard tag: %+v", ti)
	}
	wantStages := []obs.Stage{obs.StageFrameRead, obs.StageExec, obs.StageSRSSReplicate}
	if len(ti.Stages) != len(wantStages) {
		t.Fatalf("stages: %+v", ti.Stages)
	}
	for i, st := range ti.Stages {
		if st.Stage != wantStages[i] {
			t.Fatalf("stage[%d] = %v, want %v", i, st.Stage, wantStages[i])
		}
	}
	if ti.Stages[0].DurNS < int64(100*time.Microsecond) {
		t.Fatalf("frame_read dur = %d, want >= 100µs", ti.Stages[0].DurNS)
	}
	if ti.Stages[2].BeginNS != 500 || ti.Stages[2].DurNS != 1000 {
		t.Fatalf("replicate span: %+v", ti.Stages[2])
	}
	c, msg, gotBody, err := DecodeResponse(rest)
	if err != nil || c != CodeOK || msg != "" || string(gotBody) != "result" {
		t.Fatalf("response after trace block: %v %v %q %v", c, msg, gotBody, err)
	}
}

func TestTraceBlockNilTrace(t *testing.T) {
	buf := AppendTraceBlock(nil, nil)
	ti, rest, err := DecodeTraceBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ti.Stages) != 0 || ti.TotalNS != 0 || ti.Batch != 0 || len(rest) != 0 {
		t.Fatalf("nil trace block: %+v rest=%d", ti, len(rest))
	}
	if ti.HasShard {
		t.Fatalf("nil trace block carries a shard tag: %+v", ti)
	}
}

func TestTraceBlockCorrupt(t *testing.T) {
	cases := [][]byte{
		{},           // missing count
		{200},        // count > NumStages (uvarint 200 fits one byte)
		{1},          // stage byte missing
		{1, 0},       // begin missing
		{1, 0, 0},    // dur missing
		{0},          // total missing
		{0, 0},       // batch missing
		{0, 0, 0},    // flags missing
		{0, 0, 0, 0}, // shard tag missing
	}
	for i, c := range cases {
		if _, _, err := DecodeTraceBlock(c); !errors.Is(err, ErrProtocol) {
			t.Fatalf("case %d: err = %v, want ErrProtocol", i, err)
		}
	}
}
