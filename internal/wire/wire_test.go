package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/sqlfront"
)

func TestFrameRoundTrip(t *testing.T) {
	in := Frame{RequestID: 42, Op: OpExec, Payload: []byte("hello")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.RequestID != in.RequestID || out.Op != in.Op || string(out.Payload) != "hello" {
		t.Fatalf("round trip: %+v", out)
	}
	// Empty payload.
	buf.Reset()
	WriteFrame(&buf, Frame{RequestID: 7, Op: OpPing})
	out, err = ReadFrame(&buf, true)
	if err != nil || out.Payload != nil || out.Op != OpPing {
		t.Fatalf("empty payload: %+v %v", out, err)
	}
}

func TestFrameViolations(t *testing.T) {
	mk := func(b []byte) io.Reader { return bytes.NewReader(b) }

	// Clean EOF before any bytes.
	if _, err := ReadFrame(mk(nil), true); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v", err)
	}
	// Torn length prefix.
	if _, err := ReadFrame(mk([]byte{0, 0}), true); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn length: %v", err)
	}
	// Torn header after a valid length.
	torn := binary.BigEndian.AppendUint32(nil, 9)
	torn = append(torn, 1, 2, 3)
	if _, err := ReadFrame(mk(torn), true); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header: %v", err)
	}
	// Torn payload.
	full := AppendFrame(nil, Frame{RequestID: 1, Op: OpExec, Payload: []byte("payload")})
	if _, err := ReadFrame(mk(full[:len(full)-3]), true); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn payload: %v", err)
	}
	// Length below the fixed header: protocol violation.
	small := binary.BigEndian.AppendUint32(nil, 4)
	if _, err := ReadFrame(mk(append(small, 9, 9, 9, 9)), true); !errors.Is(err, ErrProtocol) {
		t.Fatalf("undersize: no protocol error")
	}
	// Oversize length: protocol violation before any allocation.
	big := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadFrame(mk(big), true); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversize: no protocol error")
	}
	// Garbage (e.g. an HTTP request) parses as an absurd length or bad
	// opcode; either way it must be a protocol violation, not a panic.
	if _, err := ReadFrame(mk([]byte("GET / HTTP/1.1\r\n\r\n")), true); !errors.Is(err, ErrProtocol) {
		t.Fatalf("garbage: no protocol error")
	}
	// Unknown opcode.
	bad := AppendFrame(nil, Frame{RequestID: 1, Op: Op(99), Payload: nil})
	if _, err := ReadFrame(mk(bad), true); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad opcode: no protocol error")
	}
	// A request opcode is a violation on the client side, which expects
	// only responses.
	req := AppendFrame(nil, Frame{RequestID: 1, Op: OpExec})
	if _, err := ReadFrame(mk(req), false); !errors.Is(err, ErrProtocol) {
		t.Fatalf("request on response side: no protocol error")
	}
}

func TestExecPayloadRoundTrip(t *testing.T) {
	args := []core.Value{core.I(7), core.S("x"), core.Null, core.F(1.5), core.B([]byte{1, 2})}
	p := EncodeExec("INSERT INTO t VALUES (?, ?, ?, ?, ?)", args)
	sql, got, err := DecodeExec(p)
	if err != nil {
		t.Fatal(err)
	}
	if sql != "INSERT INTO t VALUES (?, ?, ?, ?, ?)" || len(got) != len(args) {
		t.Fatalf("decode: %q %v", sql, got)
	}
	for i := range args {
		if !got[i].Equal(args[i]) {
			t.Fatalf("arg %d: %v != %v", i, got[i], args[i])
		}
	}
	if _, _, err := DecodeExec([]byte{250}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("corrupt exec payload: %v", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := &Result{
		Columns:  []string{"id", "name"},
		Rows:     []core.Row{{core.I(1), core.S("ada")}, {core.I(2), core.Null}},
		Affected: 3,
	}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Affected != 3 || len(out.Columns) != 2 || len(out.Rows) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
	if !out.Rows[0][1].Equal(core.S("ada")) || !out.Rows[1][1].IsNull() {
		t.Fatalf("rows: %+v", out.Rows)
	}
	// Empty result.
	out, err = DecodeResult(EncodeResult(&Result{}))
	if err != nil || len(out.Rows) != 0 || out.Affected != 0 {
		t.Fatalf("empty: %+v %v", out, err)
	}
	if _, err := DecodeResult([]byte{255}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("corrupt result: %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	p := EncodeResponse(CodeConflict, "boom", []byte("body"))
	c, msg, body, err := DecodeResponse(p)
	if err != nil || c != CodeConflict || msg != "boom" || string(body) != "body" {
		t.Fatalf("response: %v %q %q %v", c, msg, body, err)
	}
	if _, _, _, err := DecodeResponse([]byte{0}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("short response: %v", err)
	}
}

// TestErrorRoundTrip is the end-to-end error-mapping table: for every
// error shape a server can see, Classify must pick exactly one stable
// code, and the client-side rehydration must satisfy errors.Is against
// the same sentinel. Fatal codes win over retryable ones no matter how
// the error is wrapped.
func TestErrorRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		code      Code
		sentinel  error // what errors.Is must match client-side (nil = only *Error)
		retryable bool
	}{
		{"conflict", fmt.Errorf("x: %w", engineapi.ErrConflict), CodeConflict, engineapi.ErrConflict, true},
		{"duplicate", fmt.Errorf("x: %w", engineapi.ErrDuplicate), CodeDuplicate, engineapi.ErrDuplicate, false},
		{"not found", fmt.Errorf("x: %w", engineapi.ErrNotFound), CodeNotFound, engineapi.ErrNotFound, false},
		{"busy", fmt.Errorf("x: %w", ErrServerBusy), CodeBusy, ErrServerBusy, true},
		{"worker busy", fmt.Errorf("x: %w", core.ErrWorkerBusy), CodeBusy, ErrServerBusy, true},
		{"closed", fmt.Errorf("x: %w", core.ErrClosed), CodeClosed, core.ErrClosed, false},
		{"durability", fmt.Errorf("x: %w", core.ErrDurabilityLost), CodeDurabilityLost, core.ErrDurabilityLost, false},
		{"no txn", fmt.Errorf("x: %w", sqlfront.ErrNoTxn), CodeBadRequest, nil, false},
		{"cross engine", fmt.Errorf("x: %w", sqlfront.ErrCrossEngine), CodeBadRequest, nil, false},
		{"bad plan", fmt.Errorf("x: %w", sqlfront.ErrBadPlan), CodeBadRequest, nil, false},
		{"param count", fmt.Errorf("x: %w", sqlfront.ErrParamCount), CodeBadRequest, nil, false},
		{"bad statement", fmt.Errorf("%w: parse", ErrBadStatement), CodeBadRequest, nil, false},
		{"unclassified", errors.New("mystery"), CodeInternal, nil, false},

		// Precedence: fatal beats retryable regardless of wrap order. A
		// client must never be told to retry into a fail-stopped engine.
		{"durability wraps conflict",
			fmt.Errorf("%w: then %w", core.ErrDurabilityLost, engineapi.ErrConflict),
			CodeDurabilityLost, core.ErrDurabilityLost, false},
		{"conflict wraps durability",
			fmt.Errorf("%w: then %w", engineapi.ErrConflict, core.ErrDurabilityLost),
			CodeDurabilityLost, core.ErrDurabilityLost, false},
		{"closed wraps busy",
			fmt.Errorf("%w: then %w", ErrServerBusy, core.ErrClosed),
			CodeClosed, core.ErrClosed, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := Classify(tc.err)
			if code != tc.code {
				t.Fatalf("Classify(%v) = %v, want %v", tc.err, code, tc.code)
			}
			if Retryable(code) != tc.retryable {
				t.Fatalf("Retryable(%v) = %v, want %v", code, Retryable(code), tc.retryable)
			}
			// Cross the wire: encode, decode, rehydrate.
			p := EncodeResponse(code, tc.err.Error(), nil)
			c2, msg, _, err := DecodeResponse(p)
			if err != nil || c2 != code {
				t.Fatalf("wire round trip: %v %v", c2, err)
			}
			remote := FromCode(c2, msg)
			if tc.sentinel != nil && !errors.Is(remote, tc.sentinel) {
				t.Fatalf("client-side errors.Is(%v, %v) = false", remote, tc.sentinel)
			}
			var we *Error
			if !errors.As(remote, &we) || we.Code != code {
				t.Fatalf("rehydrated error lost its code: %v", remote)
			}
			if we.Retryable() != tc.retryable {
				t.Fatalf("rehydrated retryability mismatch")
			}
			// Exactly one stable code: re-classifying the rehydrated
			// error lands on the same code.
			if Classify(remote) != code {
				t.Fatalf("re-Classify(%v) = %v, want %v", remote, Classify(remote), code)
			}
		})
	}
	if FromCode(CodeOK, "") != nil {
		t.Fatal("FromCode(CodeOK) != nil")
	}
}

func TestClassifyNil(t *testing.T) {
	if Classify(nil) != CodeOK {
		t.Fatal("nil must classify OK")
	}
}
