package wire

import "testing"

// These tables freeze the wire protocol's numeric assignments. Opcodes and
// status codes are wire-stable by contract (mixed-version clusters, shard
// routing, replica log shipping all speak across binaries), so any change
// here that is not a pure append is a protocol break. A failing case in
// this file means a constant was renumbered: fix the constant, never the
// table.

var goldenOps = []struct {
	op   Op
	id   uint8
	name string
	// request: a client may put this opcode on the wire (validRequest).
	request bool
}{
	{OpPing, 1, "ping", true},
	{OpExec, 2, "exec", true},
	{OpBegin, 3, "begin", true},
	{OpCommit, 4, "commit", true},
	{OpAbort, 5, "abort", true},
	{OpStats, 6, "stats", true},
	{OpResponse, 7, "response", false}, // server -> client only
	{OpPrepare, 8, "prepare", true},
	{OpExecStmt, 9, "exec_stmt", true},
	{OpCloseStmt, 10, "close_stmt", true},
	{OpExecAt, 11, "exec_at", true},
	{OpReplHello, 12, "repl_hello", true},
	{OpReplList, 13, "repl_list", true},
	{OpReplFetch, 14, "repl_fetch", true},
	{OpShardMap, 15, "shard_map", true},
	{OpTxnPrepare, 16, "txn_prepare", true},
	{OpTxnDecide, 17, "txn_decide", true},
	{OpTxnStatus, 18, "txn_status", true},
	{OpTxnRecover, 19, "txn_recover", true},
	{OpTxnForget, 20, "txn_forget", true},
	{OpScanOpen, 21, "scan_open", true},
	{OpScanNext, 22, "scan_next", true},
	{OpScanClose, 23, "scan_close", true},
	{OpExecBatch, 24, "exec_batch", true},
}

var goldenCodes = []struct {
	code      Code
	id        uint16
	name      string
	retryable bool
	fatal     bool
}{
	{CodeOK, 0, "ok", false, false},
	{CodeConflict, 1, "conflict", true, false},
	{CodeDuplicate, 2, "duplicate", false, false},
	{CodeNotFound, 3, "not_found", false, false},
	{CodeBusy, 4, "busy", true, false},
	{CodeBadRequest, 5, "bad_request", false, false},
	{CodeClosed, 6, "closed", false, true},
	{CodeDurabilityLost, 7, "durability_lost", false, true},
	{CodeInternal, 8, "internal", false, false},
	{CodeReadOnly, 9, "read_only", false, false},
	{CodeStaleEpoch, 10, "stale_epoch", false, false},
	{CodeInDoubt, 11, "in_doubt", false, false},
	{CodeWrongShard, 12, "wrong_shard", false, false},
	// cursor_gone is neither retryable (the pinned snapshot is unrecoverable
	// and rows may already have been consumed) nor fatal (the connection and
	// server are fine; only the one scan must be reissued).
	{CodeCursorGone, 13, "cursor_gone", false, false},
}

func TestGoldenOpcodes(t *testing.T) {
	if got, want := len(goldenOps), int(MaxOp); got != want {
		t.Fatalf("golden table has %d opcodes, MaxOp is %d: new opcodes must be appended here", got, want)
	}
	seen := make(map[uint8]bool)
	for _, g := range goldenOps {
		if uint8(g.op) != g.id {
			t.Errorf("opcode %s renumbered: is %d, frozen at %d", g.name, uint8(g.op), g.id)
		}
		if got := g.op.String(); got != g.name {
			t.Errorf("opcode %d: String() = %q, frozen name %q", g.id, got, g.name)
		}
		if got := validRequest(g.op); got != g.request {
			t.Errorf("opcode %s: validRequest = %v, want %v", g.name, got, g.request)
		}
		if seen[g.id] {
			t.Errorf("opcode id %d assigned twice", g.id)
		}
		seen[g.id] = true
	}
	// Opcode 0 is the zero value and must stay unassigned: a zeroed frame
	// header is never a valid request.
	if validRequest(Op(0)) {
		t.Error("opcode 0 must not be a valid request")
	}
	if MaxOp != OpExecBatch {
		t.Errorf("MaxOp = %d, want OpExecBatch (%d)", MaxOp, OpExecBatch)
	}
}

func TestGoldenCodes(t *testing.T) {
	if got, want := len(goldenCodes), int(MaxCode)+1; got != want {
		t.Fatalf("golden table has %d codes, MaxCode is %d: new codes must be appended here", got, int(MaxCode))
	}
	seen := make(map[uint16]bool)
	for _, g := range goldenCodes {
		if uint16(g.code) != g.id {
			t.Errorf("code %s renumbered: is %d, frozen at %d", g.name, uint16(g.code), g.id)
		}
		if got := g.code.String(); got != g.name {
			t.Errorf("code %d: String() = %q, frozen name %q", g.id, got, g.name)
		}
		if got := Retryable(g.code); got != g.retryable {
			t.Errorf("code %s: Retryable = %v, want %v", g.name, got, g.retryable)
		}
		if got := Fatal(g.code); got != g.fatal {
			t.Errorf("code %s: Fatal = %v, want %v", g.name, got, g.fatal)
		}
		if seen[g.id] {
			t.Errorf("code id %d assigned twice", g.id)
		}
		seen[g.id] = true
	}
	if MaxCode != CodeCursorGone {
		t.Errorf("MaxCode = %d, want CodeCursorGone (%d)", MaxCode, CodeCursorGone)
	}
}
