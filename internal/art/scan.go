package art

import (
	"bytes"
	"sync"
)

// Scan visits entries with from <= key < to in ascending key order, calling
// fn until it returns false. A nil from means "from the beginning"; a nil to
// means "to the end". Tombstones are visited with tomb=true so that
// multi-component merging scans can suppress deleted keys.
//
// Scan is safe to run concurrently with writers; it reads each node under
// optimistic version validation and retries nodes that change underneath it.
// It does not promise a point-in-time snapshot of the index -- in HiEngine
// that guarantee comes from MVCC visibility over the returned RIDs, not from
// the index itself.
func (t *Tree) Scan(from, to []byte, fn func(key []byte, rid uint64, tomb bool) bool) {
	t.scanNode(t.root, nil, from, to, fn)
}

// innerSnapshot is a consistent copy of an inner node's routing state.
type innerSnapshot struct {
	prefix   []byte
	term     *node
	children []snapChild
}

type snapChild struct {
	b byte
	c *node
}

var snapPool = sync.Pool{
	New: func() interface{} { return &innerSnapshot{children: make([]snapChild, 0, 64)} },
}

// snapshotInto reads n's routing state into s under version validation,
// retrying until a consistent view is observed. ok is false when the node
// became obsolete.
func (n *node) snapshotInto(s *innerSnapshot) (ok bool) {
	for {
		v, alive := n.rLock()
		if !alive {
			return false
		}
		s.prefix = n.loadPrefix()
		s.term = n.term.Load()
		s.children = s.children[:0]
		n.eachChild(func(b byte, c *node) bool {
			s.children = append(s.children, snapChild{b, c})
			return true
		})
		if n.rValidate(v) {
			return true
		}
	}
}

// prefixMayIntersect reports whether keys having prefix p can fall in
// [from, to).
func prefixMayIntersect(p, from, to []byte) bool {
	if to != nil && bytes.Compare(p, to) >= 0 {
		// The minimum key in the subtree is p itself.
		return false
	}
	if from != nil && bytes.Compare(p, from) < 0 && !bytes.HasPrefix(from, p) {
		// Every key in the subtree is below from.
		return false
	}
	return true
}

func keyInRange(k, from, to []byte) bool {
	if from != nil && bytes.Compare(k, from) < 0 {
		return false
	}
	if to != nil && bytes.Compare(k, to) >= 0 {
		return false
	}
	return true
}

// scanNode returns false when fn aborted the scan.
func (t *Tree) scanNode(n *node, acc, from, to []byte, fn func([]byte, uint64, bool) bool) bool {
	if n.kind == kLeaf {
		if keyInRange(n.key, from, to) {
			return fn(n.key, n.rid, n.tomb)
		}
		return true
	}
	s := snapPool.Get().(*innerSnapshot)
	defer snapPool.Put(s)
	if !n.snapshotInto(s) {
		// Node was replaced (grow/split); its contents remain reachable
		// through the new node on the next scan, but this path cannot
		// continue. Treat as empty: the replacing writer's data is newer
		// than the scan's start anyway.
		return true
	}
	path := append(acc, s.prefix...)
	if !prefixMayIntersect(path, from, to) {
		return true
	}
	if s.term != nil && keyInRange(s.term.key, from, to) {
		if !fn(s.term.key, s.term.rid, s.term.tomb) {
			return false
		}
	}
	for _, ch := range s.children {
		sub := append(path, ch.b)
		if !prefixMayIntersect(sub, from, to) {
			// Children are in ascending byte order: once past `to`,
			// nothing further can match.
			if to != nil && bytes.Compare(sub, to) >= 0 {
				return true
			}
			continue
		}
		if !t.scanNode(ch.c, sub, from, to, fn) {
			return false
		}
		path = sub[:len(path)] // keep reusing the same backing array
	}
	return true
}

// Min returns the smallest key in the tree (nil if empty). Tombstones count.
func (t *Tree) Min() (key []byte, rid uint64, ok bool) {
	t.Scan(nil, nil, func(k []byte, r uint64, _ bool) bool {
		key, rid, ok = k, r, true
		return false
	})
	return key, rid, ok
}
