package art

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertSearchBasic(t *testing.T) {
	tr := New()
	tr.Insert([]byte("hello"), 1)
	tr.Insert([]byte("world"), 2)
	if rid, ok, tomb := tr.Search([]byte("hello")); !ok || tomb || rid != 1 {
		t.Fatalf("hello: %d %v %v", rid, ok, tomb)
	}
	if rid, ok, _ := tr.Search([]byte("world")); !ok || rid != 2 {
		t.Fatalf("world: %d %v", rid, ok)
	}
	if _, ok, _ := tr.Search([]byte("nope")); ok {
		t.Fatal("found absent key")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestUpsertReplaces(t *testing.T) {
	tr := New()
	tr.Insert([]byte("k"), 1)
	tr.Insert([]byte("k"), 2)
	if rid, ok, _ := tr.Search([]byte("k")); !ok || rid != 2 {
		t.Fatalf("got %d %v", rid, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after upsert", tr.Len())
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys that are prefixes of each other exercise terminal leaves.
	tr := New()
	keys := []string{"", "a", "ab", "abc", "abcd", "abd", "b"}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i+1))
	}
	for i, k := range keys {
		rid, ok, _ := tr.Search([]byte(k))
		if !ok || rid != uint64(i+1) {
			t.Fatalf("key %q: rid=%d ok=%v", k, rid, ok)
		}
	}
	if _, ok, _ := tr.Search([]byte("abcde")); ok {
		t.Fatal("found absent extension")
	}
	if _, ok, _ := tr.Search([]byte("abce")); ok {
		t.Fatal("found absent sibling")
	}
}

func TestPrefixSplit(t *testing.T) {
	tr := New()
	// Long shared prefix forces path compression, then a divergence
	// inside the compressed path forces a split.
	tr.Insert([]byte("aaaaaaaaaaX1"), 1)
	tr.Insert([]byte("aaaaaaaaaaX2"), 2)
	tr.Insert([]byte("aaaaaBBBBBBB"), 3) // diverges inside "aaaaaaaaaaX"
	for k, want := range map[string]uint64{"aaaaaaaaaaX1": 1, "aaaaaaaaaaX2": 2, "aaaaaBBBBBBB": 3} {
		if rid, ok, _ := tr.Search([]byte(k)); !ok || rid != want {
			t.Fatalf("key %q: rid=%d ok=%v want %d", k, rid, ok, want)
		}
	}
}

func TestTombstone(t *testing.T) {
	tr := New()
	tr.Insert([]byte("k"), 9)
	tr.InsertTombstone([]byte("k"))
	rid, ok, tomb := tr.Search([]byte("k"))
	if !ok || !tomb {
		t.Fatalf("tombstone not visible: rid=%d ok=%v tomb=%v", rid, ok, tomb)
	}
}

func TestNodeGrowth(t *testing.T) {
	// >48 distinct first bytes under one parent forces k16 -> k48 -> k256.
	tr := New()
	for i := 0; i < 256; i++ {
		key := []byte{'p', byte(i), 'x'}
		tr.Insert(key, uint64(i+1))
	}
	for i := 0; i < 256; i++ {
		key := []byte{'p', byte(i), 'x'}
		if rid, ok, _ := tr.Search(key); !ok || rid != uint64(i+1) {
			t.Fatalf("key %v: rid=%d ok=%v", key, rid, ok)
		}
	}
	if tr.Len() != 256 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func u64key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestPropertyMapEquivalence(t *testing.T) {
	tr := New()
	ref := make(map[string]uint64)
	f := func(key []byte, rid uint64) bool {
		if len(key) > 64 {
			key = key[:64]
		}
		tr.Insert(key, rid)
		ref[string(key)] = rid
		// Spot-check this key and one random existing key.
		if got, ok, _ := tr.Search(key); !ok || got != rid {
			return false
		}
		for k, v := range ref {
			got, ok, _ := tr.Search([]byte(k))
			return ok && got == v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	// Full sweep.
	for k, v := range ref {
		if got, ok, _ := tr.Search([]byte(k)); !ok || got != v {
			t.Fatalf("final check %q: got=%d ok=%v want=%d", k, got, ok, v)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
}

func TestScanOrderedComplete(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	ref := make(map[string]uint64)
	for i := 0; i < 5000; i++ {
		k := u64key(uint64(rng.Intn(100000)))
		ref[string(k)] = uint64(i)
		tr.Insert(k, uint64(i))
	}
	var keys []string
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Scan(nil, nil, func(k []byte, rid uint64, tomb bool) bool {
		if i >= len(keys) {
			t.Fatalf("scan produced extra key %x", k)
		}
		if string(k) != keys[i] {
			t.Fatalf("scan out of order at %d: got %x want %x", i, k, keys[i])
		}
		if rid != ref[keys[i]] {
			t.Fatalf("scan rid mismatch at %x", k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d of %d", i, len(keys))
	}
}

func TestScanRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(u64key(uint64(i*3)), uint64(i))
	}
	from, to := u64key(300), u64key(600)
	var got []uint64
	tr.Scan(from, to, func(k []byte, rid uint64, _ bool) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	var want []uint64
	for i := 0; i < 1000; i++ {
		v := uint64(i * 3)
		if v >= 300 && v < 600 {
			want = append(want, v)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("range scan got %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range scan key %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(u64key(uint64(i)), uint64(i))
	}
	n := 0
	tr.Scan(nil, nil, func([]byte, uint64, bool) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestScanVariableLengthKeysOrdered(t *testing.T) {
	tr := New()
	keys := []string{"", "a", "aa", "aaa", "ab", "b", "ba", "z"}
	perm := rand.Perm(len(keys))
	for _, i := range perm {
		tr.Insert([]byte(keys[i]), uint64(i))
	}
	var got []string
	tr.Scan(nil, nil, func(k []byte, _ uint64, _ bool) bool {
		got = append(got, string(k))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order mismatch: got %v want %v", got, want)
		}
	}
}

func TestConcurrentInsertSearch(t *testing.T) {
	tr := New()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := u64key(uint64(w)<<32 | uint64(i))
				tr.Insert(k, uint64(w*per+i+1))
				if rid, ok, _ := tr.Search(k); !ok || rid != uint64(w*per+i+1) {
					t.Errorf("lost own insert w=%d i=%d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 97 {
			k := u64key(uint64(w)<<32 | uint64(i))
			if rid, ok, _ := tr.Search(k); !ok || rid != uint64(w*per+i+1) {
				t.Fatalf("post-hoc miss w=%d i=%d", w, i)
			}
		}
	}
}

func TestConcurrentMixedHotKeys(t *testing.T) {
	// Contended upserts on a small key space plus concurrent scans: the
	// OLC paths must neither lose updates nor crash/livelock.
	tr := New()
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers/2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				tr.Insert(u64key(uint64(i%64)), uint64(i+1))
			}
		}(w)
	}
	for w := 0; w < workers/2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				tr.Scan(nil, nil, func([]byte, uint64, bool) bool { n++; return true })
			}
		}()
	}
	// Wait for writers, then stop scanners.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for w := 0; w < workers/2; w++ {
	}
	close(stop)
	<-done
	for i := 0; i < 64; i++ {
		if _, ok, _ := tr.Search(u64key(uint64(i))); !ok {
			t.Fatalf("hot key %d missing", i)
		}
	}
}

func treeEntries(tr *Tree) []Entry {
	var out []Entry
	tr.Scan(nil, nil, func(k []byte, rid uint64, tomb bool) bool {
		out = append(out, Entry{Key: append([]byte(nil), k...), RID: rid, Tomb: tomb})
		return true
	})
	return out
}

func TestMergeUnionNewerWins(t *testing.T) {
	newer, older := New(), New()
	ref := make(map[string]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		k := u64key(uint64(rng.Intn(3000)))
		older.Insert(k, uint64(i))
		ref[string(k)] = uint64(i)
	}
	for i := 0; i < 2000; i++ {
		k := u64key(uint64(rng.Intn(3000)))
		newer.Insert(k, uint64(100000+i))
		ref[string(k)] = uint64(100000 + i)
	}
	merged := newer.Merge(older, false)
	if merged.Len() != len(ref) {
		t.Fatalf("merged Len = %d, want %d", merged.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok, _ := merged.Search([]byte(k))
		if !ok || got != v {
			t.Fatalf("merged[%x] = %d,%v want %d", k, got, ok, v)
		}
	}
	// Inputs untouched.
	if older.Len() != 0 && newer.Len() != 0 {
		e := treeEntries(older)
		if len(e) == 0 {
			t.Fatal("older tree mutated")
		}
	}
}

func TestMergeVariableLengthAndPrefixCases(t *testing.T) {
	// Exercise inner/inner unequal-prefix, inner/leaf and leaf/leaf cases.
	a, b := New(), New()
	aKeys := []string{"app", "apple", "applesauce", "banana", "x"}
	bKeys := []string{"app", "application", "band", "bandana", "x", "xyz"}
	for i, k := range aKeys {
		a.Insert([]byte(k), uint64(i+1))
	}
	for i, k := range bKeys {
		b.Insert([]byte(k), uint64(100+i))
	}
	m := a.Merge(b, false)
	ref := map[string]uint64{}
	for i, k := range bKeys {
		ref[k] = uint64(100 + i)
	}
	for i, k := range aKeys {
		ref[k] = uint64(i + 1) // newer wins
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d want %d; entries: %v", m.Len(), len(ref), treeEntries(m))
	}
	for k, v := range ref {
		if got, ok, _ := m.Search([]byte(k)); !ok || got != v {
			t.Fatalf("m[%q] = %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestMergeTombstones(t *testing.T) {
	newer, older := New(), New()
	older.Insert([]byte("keep"), 1)
	older.Insert([]byte("kill"), 2)
	newer.InsertTombstone([]byte("kill"))
	// Retained tombstone (not the oldest component).
	m := newer.Merge(older, false)
	if _, ok, tomb := m.Search([]byte("kill")); !ok || !tomb {
		t.Fatal("tombstone dropped in non-final merge")
	}
	// Dropped tombstone (final merge).
	m2 := newer.Merge(older, true)
	if _, ok, _ := m2.Search([]byte("kill")); ok {
		t.Fatal("deleted key resurfaced in final merge")
	}
	if rid, ok, _ := m2.Search([]byte("keep")); !ok || rid != 1 {
		t.Fatal("unrelated key lost in final merge")
	}
	if m2.Len() != 1 {
		t.Fatalf("final merge Len = %d", m2.Len())
	}
}

func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(aKeys, bKeys []uint16) bool {
		a, b := New(), New()
		ref := make(map[string]uint64)
		for i, k := range bKeys {
			key := u64key(uint64(k))
			b.Insert(key, uint64(1000+i))
			ref[string(key)] = uint64(1000 + i)
		}
		for i, k := range aKeys {
			key := u64key(uint64(k))
			a.Insert(key, uint64(i))
			ref[string(key)] = uint64(i)
		}
		m := a.Merge(b, false)
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok, _ := m.Search([]byte(k)); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- serialized components ------------------------------------------------

// memRegion is an in-memory Appender/ByteSource for tests.
type memRegion struct {
	b []byte
}

func (m *memRegion) Append(data []byte) (int64, error) {
	off := int64(len(m.b))
	m.b = append(m.b, data...)
	return off, nil
}

func (m *memRegion) At(off int64, n int) ([]byte, error) {
	if off < 0 || off+int64(n) > int64(len(m.b)) {
		return nil, fmt.Errorf("memRegion: out of range")
	}
	return m.b[off : off+int64(n)], nil
}

func (m *memRegion) Len() int64 { return int64(len(m.b)) }

func buildComponent(t *testing.T, tr *Tree) *Component {
	t.Helper()
	r := &memRegion{}
	res, err := SerializeTree(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenComponent(r, res)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSerializeSearchEquivalence(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	ref := make(map[string]uint64)
	for i := 0; i < 4000; i++ {
		k := u64key(uint64(rng.Intn(10000)))
		if rng.Intn(10) == 0 {
			k = k[:rng.Intn(8)] // variable lengths
		}
		tr.Insert(k, uint64(i+1))
		ref[string(k)] = uint64(i + 1)
	}
	tr.InsertTombstone([]byte("gone"))
	c := buildComponent(t, tr)
	if c.Count() != int64(tr.Len()) {
		t.Fatalf("Count = %d, want %d", c.Count(), tr.Len())
	}
	for k, v := range ref {
		rid, ok, tomb, err := c.Search([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || tomb || rid != v {
			t.Fatalf("disk[%x] = %d,%v,%v want %d", k, rid, ok, tomb, v)
		}
	}
	if _, ok, tomb, _ := c.Search([]byte("gone")); !ok || !tomb {
		t.Fatal("tombstone lost in serialization")
	}
	if _, ok, _, _ := c.Search([]byte("never-inserted")); ok {
		t.Fatal("found absent key on disk")
	}
}

func TestSerializedScanMatchesTreeScan(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		tr.Insert(u64key(uint64(rng.Intn(50000))), uint64(i))
	}
	c := buildComponent(t, tr)
	var mem, disk []Entry
	tr.Scan(u64key(1000), u64key(40000), func(k []byte, rid uint64, tomb bool) bool {
		mem = append(mem, Entry{Key: append([]byte(nil), k...), RID: rid, Tomb: tomb})
		return true
	})
	if err := c.Scan(u64key(1000), u64key(40000), func(k []byte, rid uint64, tomb bool) bool {
		disk = append(disk, Entry{Key: append([]byte(nil), k...), RID: rid, Tomb: tomb})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(mem) != len(disk) {
		t.Fatalf("scan lengths differ: mem=%d disk=%d", len(mem), len(disk))
	}
	for i := range mem {
		if !bytes.Equal(mem[i].Key, disk[i].Key) || mem[i].RID != disk[i].RID {
			t.Fatalf("scan entry %d differs", i)
		}
	}
}

func TestComponentIterOrdered(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(u64key(uint64(i*7)), uint64(i))
	}
	c := buildComponent(t, tr)
	it := c.Iter()
	var prev []byte
	n := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			t.Fatalf("iterator out of order at %d", n)
		}
		prev = append(prev[:0], e.Key...)
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 1000 {
		t.Fatalf("iterated %d, want 1000", n)
	}
}

func TestBuildFromSortedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := make(map[string]uint64)
	for i := 0; i < 2000; i++ {
		ref[string(u64key(uint64(rng.Intn(100000))))] = uint64(i)
	}
	var entries []Entry
	for k, v := range ref {
		entries = append(entries, Entry{Key: []byte(k), RID: v})
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].Key, entries[j].Key) < 0 })
	r := &memRegion{}
	res, err := BuildFromSorted(entries, r)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenComponent(r, res)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != int64(len(entries)) {
		t.Fatalf("Count = %d want %d", c.Count(), len(entries))
	}
	for k, v := range ref {
		rid, ok, _, err := c.Search([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || rid != v {
			t.Fatalf("built[%x] = %d,%v want %d", k, rid, ok, v)
		}
	}
	// Ordered iteration equals input order.
	it := c.Iter()
	for i := range entries {
		e, ok := it.Next()
		if !ok || !bytes.Equal(e.Key, entries[i].Key) {
			t.Fatalf("iter mismatch at %d", i)
		}
	}
}

func TestBuildFromSortedRejectsUnsorted(t *testing.T) {
	r := &memRegion{}
	entries := []Entry{{Key: []byte("b")}, {Key: []byte("a")}}
	if _, err := BuildFromSorted(entries, r); err == nil {
		t.Fatal("unsorted input accepted")
	}
	dup := []Entry{{Key: []byte("a")}, {Key: []byte("a")}}
	if _, err := BuildFromSorted(dup, r); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestBuildFromSortedEmpty(t *testing.T) {
	r := &memRegion{}
	res, err := BuildFromSorted(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenComponent(r, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _, _ := c.Search([]byte("x")); ok {
		t.Fatal("found key in empty component")
	}
	if _, ok := c.Iter().Next(); ok {
		t.Fatal("empty component iterated entries")
	}
}

func TestEmptyTreeSerialize(t *testing.T) {
	c := buildComponent(t, New())
	if _, ok, _, _ := c.Search([]byte("x")); ok {
		t.Fatal("found key in empty tree component")
	}
}

func TestOpenComponentRejectsGarbage(t *testing.T) {
	r := &memRegion{b: []byte{'Z', 1, 2, 3}}
	if _, err := OpenComponent(r, SerializeResult{RootOff: 1, Length: 4}); err == nil {
		t.Fatal("bad magic accepted")
	}
	r2 := &memRegion{b: []byte{'A', 1, 2, 3}}
	if _, err := OpenComponent(r2, SerializeResult{RootOff: 99, Length: 4}); err == nil {
		t.Fatal("bad root offset accepted")
	}
}
