package art

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the append-only serialized form of an ART, the basis
// of HiEngine's LSM-like index persistence (Section 4.5). A tree is written
// post-order (children before parents) into an append-only byte region, so
// every child reference is a known backward offset; the result can be
// searched and iterated directly in its serialized form through mmap-style
// reads, which is what gives indexes partial-memory (spill-out) support.
//
// Layout (all integers are uvarints):
//
//	region   := magic(1 byte 'A') node*
//	leaf     := 0x00 keyLen key rid tomb(1)
//	inner    := 0x01 prefixLen prefix termOff nChildren (byte childOff)*
//
// Offsets are relative to the region start; 0 (the magic byte) doubles as
// the nil reference. The root is the last node written; its offset and the
// entry count are returned to the caller, which stores them in component
// metadata (and ultimately in checkpoints).

// Appender is the append-only sink a tree is serialized into. srss.PLog
// implements it.
type Appender interface {
	Append(data []byte) (int64, error)
}

// ByteSource is the random-access view a serialized tree is read through.
// srss.View implements it.
type ByteSource interface {
	At(off int64, n int) ([]byte, error)
	Len() int64
}

const (
	regionMagic = 'A'
	tagLeaf     = 0x00
	tagInner    = 0x01

	// MaxKeyLen bounds index keys so that any serialized node fits in one
	// bounded read.
	MaxKeyLen = 2048

	// maxNodeSize is the parse read-ahead: a worst-case inner node is
	// 1 + 10 + MaxKeyLen + 10 + 10 + 256*(1+10) bytes < 16 KiB.
	maxNodeSize = 16 << 10
)

// ErrKeyTooLong is returned for keys exceeding MaxKeyLen.
var ErrKeyTooLong = errors.New("art: key exceeds MaxKeyLen")

// regionWriter batches appends so serialization I/O uses a constant-size
// buffer regardless of tree size (the paper's constant-memory claim).
type regionWriter struct {
	dst Appender
	buf []byte
	off int64 // region-relative offset of the next byte
	err error
}

func newRegionWriter(dst Appender, batch int) (*regionWriter, error) {
	if batch <= 0 {
		batch = 64 << 10
	}
	w := &regionWriter{dst: dst, buf: make([]byte, 0, batch)}
	w.write([]byte{regionMagic})
	return w, w.err
}

func (w *regionWriter) write(p []byte) int64 {
	if w.err != nil {
		return 0
	}
	start := w.off
	for len(p) > 0 {
		if len(w.buf) == cap(w.buf) {
			w.flush()
			if w.err != nil {
				return 0
			}
		}
		n := copy(w.buf[len(w.buf):cap(w.buf)], p)
		w.buf = w.buf[:len(w.buf)+n]
		p = p[n:]
		w.off += int64(n)
	}
	return start
}

func (w *regionWriter) flush() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	_, w.err = w.dst.Append(w.buf)
	w.buf = w.buf[:0]
}

// encoder assembles one node before writing it.
type encoder struct{ b []byte }

func (e *encoder) reset()      { e.b = e.b[:0] }
func (e *encoder) byte(v byte) { e.b = append(e.b, v) }
func (e *encoder) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}
func (e *encoder) bytes(p []byte) {
	e.uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

func (e *encoder) leaf(key []byte, rid uint64, tomb bool) {
	e.reset()
	e.byte(tagLeaf)
	e.bytes(key)
	e.uvarint(rid)
	if tomb {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// SerializeResult describes a serialized tree region.
type SerializeResult struct {
	RootOff int64 // offset of the root node within the region
	Length  int64 // total region length in bytes
	Count   int64 // number of entries (tombstones included)
}

// SerializeTree writes a quiescent tree into dst and returns the region
// metadata. Serialization is the "merge with an empty index" special case of
// Section 4.5: a post-order walk emitting nodes in constant extra memory
// (recursion stack plus one I/O batch buffer).
func SerializeTree(t *Tree, dst Appender) (SerializeResult, error) {
	w, err := newRegionWriter(dst, 0)
	if err != nil {
		return SerializeResult{}, err
	}
	var enc encoder
	var count int64
	rootOff := serializeNode(t.root, w, &enc, &count)
	w.flush()
	if w.err != nil {
		return SerializeResult{}, w.err
	}
	return SerializeResult{RootOff: rootOff, Length: w.off, Count: count}, nil
}

func serializeNode(n *node, w *regionWriter, enc *encoder, count *int64) int64 {
	if n.kind == kLeaf {
		enc.leaf(n.key, n.rid, n.tomb)
		*count++
		return w.write(enc.b)
	}
	var termOff int64
	if l := n.term.Load(); l != nil {
		termOff = serializeNode(l, w, enc, count)
	}
	type cref struct {
		b   byte
		off int64
	}
	var crefs []cref
	n.eachChild(func(b byte, c *node) bool {
		crefs = append(crefs, cref{b, serializeNode(c, w, enc, count)})
		return true
	})
	enc.reset()
	enc.byte(tagInner)
	enc.bytes(n.loadPrefix())
	enc.uvarint(uint64(termOff))
	enc.uvarint(uint64(len(crefs)))
	for _, c := range crefs {
		enc.byte(c.b)
		enc.uvarint(uint64(c.off))
	}
	return w.write(enc.b)
}

// Entry is one key/RID pair in a sorted stream.
type Entry struct {
	Key  []byte
	RID  uint64
	Tomb bool
}

// BuildFromSorted serializes a tree directly from entries, which must be in
// strictly ascending key order (duplicates are rejected). This is how merged
// components are written: the merge iterates existing components (bounded
// memory) and streams the surviving entries here.
func BuildFromSorted(entries []Entry, dst Appender) (SerializeResult, error) {
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			return SerializeResult{}, fmt.Errorf("art: entries not strictly sorted at %d", i)
		}
	}
	for _, e := range entries {
		if len(e.Key) > MaxKeyLen {
			return SerializeResult{}, ErrKeyTooLong
		}
	}
	w, err := newRegionWriter(dst, 0)
	if err != nil {
		return SerializeResult{}, err
	}
	var enc encoder
	rootOff := buildRange(entries, 0, w, &enc, true)
	w.flush()
	if w.err != nil {
		return SerializeResult{}, w.err
	}
	return SerializeResult{RootOff: rootOff, Length: w.off, Count: int64(len(entries))}, nil
}

// buildRange writes the subtree covering entries (all sharing their first
// `depth` key bytes) and returns its offset. When root is true an inner node
// is always produced (a component root must be an inner node so Search can
// treat the root uniformly).
func buildRange(entries []Entry, depth int, w *regionWriter, enc *encoder, root bool) int64 {
	if len(entries) == 0 {
		// Empty root only.
		enc.reset()
		enc.byte(tagInner)
		enc.bytes(nil)
		enc.uvarint(0)
		enc.uvarint(0)
		return w.write(enc.b)
	}
	if len(entries) == 1 && !root {
		e := entries[0]
		enc.leaf(e.Key, e.RID, e.Tomb)
		return w.write(enc.b)
	}
	// Longest common prefix of the range beyond depth.
	first, last := entries[0].Key[depth:], entries[len(entries)-1].Key[depth:]
	lcp := matchLen(first, last)
	if root {
		lcp = 0 // the permanent in-memory root has an empty prefix; match it
	}
	prefix := first[:lcp]
	pos := depth + lcp
	var termOff int64
	rest := entries
	if len(rest[0].Key) == pos {
		e := rest[0]
		enc.leaf(e.Key, e.RID, e.Tomb)
		termOff = w.write(enc.b)
		rest = rest[1:]
	}
	type cref struct {
		b   byte
		off int64
	}
	var crefs []cref
	for len(rest) > 0 {
		b := rest[0].Key[pos]
		j := 1
		for j < len(rest) && rest[j].Key[pos] == b {
			j++
		}
		crefs = append(crefs, cref{b, buildRange(rest[:j], pos+1, w, enc, false)})
		rest = rest[j:]
	}
	enc.reset()
	enc.byte(tagInner)
	enc.bytes(prefix)
	enc.uvarint(uint64(termOff))
	enc.uvarint(uint64(len(crefs)))
	for _, c := range crefs {
		enc.byte(c.b)
		enc.uvarint(uint64(c.off))
	}
	return w.write(enc.b)
}

// --- reading -------------------------------------------------------------

// Component is a read-only serialized tree accessed through a ByteSource
// (typically an SRSS mmap view over compute-side PM or the storage tier).
type Component struct {
	src     ByteSource
	rootOff int64
	length  int64
	count   int64
}

// OpenComponent wraps a serialized region for reading.
func OpenComponent(src ByteSource, res SerializeResult) (*Component, error) {
	b, err := src.At(0, 1)
	if err != nil {
		return nil, err
	}
	if b[0] != regionMagic {
		return nil, fmt.Errorf("art: bad region magic %#x", b[0])
	}
	if res.RootOff <= 0 || res.RootOff >= res.Length {
		return nil, fmt.Errorf("art: root offset %d outside region of %d", res.RootOff, res.Length)
	}
	return &Component{src: src, rootOff: res.RootOff, length: res.Length, count: res.Count}, nil
}

// Count returns the number of entries (tombstones included).
func (c *Component) Count() int64 { return c.count }

// Length returns the serialized size in bytes.
func (c *Component) Length() int64 { return c.length }

// diskNode is a parsed node.
type diskNode struct {
	leaf bool
	// leaf fields
	key  []byte
	rid  uint64
	tomb bool
	// inner fields
	prefix     []byte
	termOff    int64
	childBytes []byte
	childOffs  []int64
}

type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.b) {
		d.err = errors.New("art: truncated node")
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.err = errors.New("art: bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.b) {
		d.err = errors.New("art: truncated bytes")
		return nil
	}
	v := d.b[d.pos : d.pos+n]
	d.pos += n
	return v
}

func (c *Component) parse(off int64) (*diskNode, error) {
	n := maxNodeSize
	if int64(n) > c.length-off {
		n = int(c.length - off)
	}
	if n <= 0 {
		return nil, fmt.Errorf("art: node offset %d out of region", off)
	}
	raw, err := c.src.At(off, n)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: raw}
	dn := &diskNode{}
	switch tag := d.byte(); tag {
	case tagLeaf:
		dn.leaf = true
		dn.key = d.bytes()
		dn.rid = d.uvarint()
		dn.tomb = d.byte() == 1
	case tagInner:
		dn.prefix = d.bytes()
		dn.termOff = int64(d.uvarint())
		nc := int(d.uvarint())
		if d.err == nil && nc > 256 {
			return nil, fmt.Errorf("art: corrupt child count %d", nc)
		}
		dn.childBytes = make([]byte, 0, nc)
		dn.childOffs = make([]int64, 0, nc)
		for i := 0; i < nc && d.err == nil; i++ {
			dn.childBytes = append(dn.childBytes, d.byte())
			dn.childOffs = append(dn.childOffs, int64(d.uvarint()))
		}
	default:
		return nil, fmt.Errorf("art: bad node tag %#x at %d", tag, off)
	}
	if d.err != nil {
		return nil, d.err
	}
	return dn, nil
}

// childOff returns the offset for byte b (0 if absent) via binary search.
func (dn *diskNode) childOff(b byte) int64 {
	lo, hi := 0, len(dn.childBytes)
	for lo < hi {
		mid := (lo + hi) / 2
		if dn.childBytes[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(dn.childBytes) && dn.childBytes[lo] == b {
		return dn.childOffs[lo]
	}
	return 0
}

// Search looks key up in the serialized tree.
func (c *Component) Search(key []byte) (rid uint64, found, tomb bool, err error) {
	off := c.rootOff
	depth := 0
	for {
		dn, err := c.parse(off)
		if err != nil {
			return 0, false, false, err
		}
		if dn.leaf {
			if bytes.Equal(dn.key, key) {
				return dn.rid, true, dn.tomb, nil
			}
			return 0, false, false, nil
		}
		m := matchLen(dn.prefix, key[depth:])
		if m < len(dn.prefix) {
			return 0, false, false, nil
		}
		depth += len(dn.prefix)
		if depth == len(key) {
			if dn.termOff == 0 {
				return 0, false, false, nil
			}
			l, err := c.parse(dn.termOff)
			if err != nil {
				return 0, false, false, err
			}
			return l.rid, true, l.tomb, nil
		}
		next := dn.childOff(key[depth])
		if next == 0 {
			return 0, false, false, nil
		}
		off = next
		depth++
	}
}

// Scan visits entries with from <= key < to in ascending order.
func (c *Component) Scan(from, to []byte, fn func(key []byte, rid uint64, tomb bool) bool) error {
	_, err := c.scanAt(c.rootOff, from, to, fn)
	return err
}

func (c *Component) scanAt(off int64, from, to []byte, fn func([]byte, uint64, bool) bool) (bool, error) {
	dn, err := c.parse(off)
	if err != nil {
		return false, err
	}
	if dn.leaf {
		if keyInRange(dn.key, from, to) {
			return fn(dn.key, dn.rid, dn.tomb), nil
		}
		return true, nil
	}
	if dn.termOff != 0 {
		l, err := c.parse(dn.termOff)
		if err != nil {
			return false, err
		}
		if keyInRange(l.key, from, to) {
			if !fn(l.key, l.rid, l.tomb) {
				return false, nil
			}
		}
	}
	for i, b := range dn.childBytes {
		_ = b
		cont, err := c.scanAt(dn.childOffs[i], from, to, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Iter returns an iterator over all entries in ascending key order, used by
// component merges.
func (c *Component) Iter() *CompIter {
	return &CompIter{c: c, stack: []iterFrame{{off: c.rootOff}}}
}

type iterFrame struct {
	off      int64
	dn       *diskNode
	termDone bool
	next     int // next child index
}

// CompIter iterates a Component in key order.
type CompIter struct {
	c     *Component
	stack []iterFrame
	err   error
}

// Err returns the first I/O or corruption error encountered.
func (it *CompIter) Err() error { return it.err }

// Next returns the next entry; ok is false at the end (or on error; check
// Err).
func (it *CompIter) Next() (e Entry, ok bool) {
	for len(it.stack) > 0 {
		f := &it.stack[len(it.stack)-1]
		if f.dn == nil {
			dn, err := it.c.parse(f.off)
			if err != nil {
				it.err = err
				return Entry{}, false
			}
			f.dn = dn
		}
		if f.dn.leaf {
			e := Entry{Key: f.dn.key, RID: f.dn.rid, Tomb: f.dn.tomb}
			it.stack = it.stack[:len(it.stack)-1]
			return e, true
		}
		if !f.termDone {
			f.termDone = true
			if f.dn.termOff != 0 {
				l, err := it.c.parse(f.dn.termOff)
				if err != nil {
					it.err = err
					return Entry{}, false
				}
				return Entry{Key: l.key, RID: l.rid, Tomb: l.tomb}, true
			}
		}
		if f.next < len(f.dn.childOffs) {
			off := f.dn.childOffs[f.next]
			f.next++
			it.stack = append(it.stack, iterFrame{off: off})
			continue
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	return Entry{}, false
}
