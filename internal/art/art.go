// Package art implements the concurrent adaptive radix tree (ART) HiEngine
// uses as its baseline index structure (Section 4.5, building on Leis et
// al., ICDE 2013), together with the paper's LSM-like persistence support:
// trees can be serialized into SRSS PLogs in an append-only format, searched
// directly in their serialized (mmap'ed) form, and merged pairwise with the
// recursive node-merge algorithm of Section 4.5.
//
// Values are 64-bit record IDs: HiEngine indexes store only key->RID
// mappings, never record data, which is what keeps merges and compaction
// cheap. Deletion inserts a tombstone so that lookups do not fall through to
// stale entries in older read-only components; physical removal happens when
// components are merged.
//
// Concurrency follows optimistic lock coupling: every inner node carries a
// version-lock word, readers proceed lock-free and validate versions,
// writers lock only the nodes they modify and restart on conflict. Leaves
// are immutable and replaced through their parent. The classic Node4 and
// Node16 size classes are coalesced into one 16-way class (Go's allocator
// size classes make a separate 4-way node unprofitable); Node48 and Node256
// are as in the paper.
package art

import (
	"bytes"
	"runtime"
	"sync/atomic"
)

// kind discriminates node layouts.
type kind uint8

const (
	kLeaf kind = iota
	k16
	k48
	k256
)

// node is a leaf or an inner node. Leaves are immutable after construction;
// inner nodes are protected by the OLC version lock in state.
type node struct {
	state atomic.Uint64 // OLC: bit0 obsolete, bit1 locked, bits2+ version
	kind  kind

	// Leaf payload (kind == kLeaf); immutable.
	key  []byte
	rid  uint64
	tomb bool

	// Inner payload.
	prefix atomic.Pointer[[]byte] // compressed path; never nil for inner
	term   atomic.Pointer[node]   // leaf for a key ending exactly at this node
	b16    *body16
	b48    *body48
	b256   *body256
}

type body16 struct {
	count    atomic.Int32
	keys     [16]atomic.Uint32 // key bytes, unsorted; only [0,count) valid
	children [16]atomic.Pointer[node]
}

type body48 struct {
	count    atomic.Int32
	index    [256]atomic.Int32 // 0 = empty, else slot+1
	children [48]atomic.Pointer[node]
}

type body256 struct {
	count    atomic.Int32
	children [256]atomic.Pointer[node]
}

var emptyPrefix = []byte{}

func newLeaf(key []byte, rid uint64, tomb bool) *node {
	k := make([]byte, len(key))
	copy(k, key)
	return &node{kind: kLeaf, key: k, rid: rid, tomb: tomb}
}

func newInner(k kind, prefix []byte) *node {
	n := &node{kind: k}
	p := make([]byte, len(prefix))
	copy(p, prefix)
	n.prefix.Store(&p)
	switch k {
	case k16:
		n.b16 = &body16{}
	case k48:
		n.b48 = &body48{}
	case k256:
		n.b256 = &body256{}
	}
	return n
}

func (n *node) loadPrefix() []byte {
	p := n.prefix.Load()
	if p == nil {
		return emptyPrefix
	}
	return *p
}

func (n *node) setPrefix(p []byte) {
	cp := make([]byte, len(p))
	copy(cp, p)
	n.prefix.Store(&cp)
}

// --- OLC version lock ---------------------------------------------------

const (
	obsoleteBit uint64 = 1
	lockedBit   uint64 = 2
	versionInc  uint64 = 4
)

// rLock spins until the node is unlocked and returns the observed version.
// ok is false when the node is obsolete (caller restarts).
func (n *node) rLock() (v uint64, ok bool) {
	for i := 0; ; i++ {
		v = n.state.Load()
		if v&lockedBit == 0 {
			return v, v&obsoleteBit == 0
		}
		if i&0x3f == 0x3f {
			runtime.Gosched()
		}
	}
}

// rValidate reports whether the node is still at version v.
func (n *node) rValidate(v uint64) bool { return n.state.Load() == v }

// upgrade attempts to convert an optimistic read at version v into a write
// lock.
func (n *node) upgrade(v uint64) bool {
	return n.state.CompareAndSwap(v, v|lockedBit)
}

// unlock releases a write lock, bumping the version.
func (n *node) unlock() {
	n.state.Add(versionInc - lockedBit)
}

// unlockObsolete releases a write lock and marks the node dead.
func (n *node) unlockObsolete() {
	n.state.Add(versionInc - lockedBit + obsoleteBit)
}

// --- child access (callers hold a read version or the write lock) --------

// child returns the child for byte b, or nil.
func (n *node) child(b byte) *node {
	switch n.kind {
	case k16:
		cnt := int(n.b16.count.Load())
		for i := 0; i < cnt && i < 16; i++ {
			if byte(n.b16.keys[i].Load()) == b {
				return n.b16.children[i].Load()
			}
		}
		return nil
	case k48:
		s := n.b48.index[b].Load()
		if s == 0 {
			return nil
		}
		return n.b48.children[s-1].Load()
	case k256:
		return n.b256.children[b].Load()
	}
	return nil
}

// childCount returns the number of children (excluding the terminal leaf).
func (n *node) childCount() int {
	switch n.kind {
	case k16:
		return int(n.b16.count.Load())
	case k48:
		return int(n.b48.count.Load())
	case k256:
		return int(n.b256.count.Load())
	}
	return 0
}

// full reports whether addChild would overflow the node's size class.
func (n *node) full() bool {
	switch n.kind {
	case k16:
		return n.b16.count.Load() >= 16
	case k48:
		return n.b48.count.Load() >= 48
	default:
		return false
	}
}

// addChild inserts a child for byte b. Caller holds the write lock and has
// checked !full() and that b is absent.
func (n *node) addChild(b byte, c *node) {
	switch n.kind {
	case k16:
		i := n.b16.count.Load()
		n.b16.keys[i].Store(uint32(b))
		n.b16.children[i].Store(c)
		n.b16.count.Store(i + 1) // publish after the slot is complete
	case k48:
		i := n.b48.count.Add(1) - 1
		n.b48.children[i].Store(c)
		n.b48.index[b].Store(i + 1)
	case k256:
		n.b256.children[b].Store(c)
		n.b256.count.Add(1)
	}
}

// replaceChild swaps the child at byte b. Caller holds the write lock; b
// must exist.
func (n *node) replaceChild(b byte, c *node) {
	switch n.kind {
	case k16:
		cnt := int(n.b16.count.Load())
		for i := 0; i < cnt; i++ {
			if byte(n.b16.keys[i].Load()) == b {
				n.b16.children[i].Store(c)
				return
			}
		}
	case k48:
		s := n.b48.index[b].Load()
		if s != 0 {
			n.b48.children[s-1].Store(c)
		}
	case k256:
		n.b256.children[b].Store(c)
	}
}

// grown returns a copy of n in the next size class (caller holds n's write
// lock). The copy is unlocked and carries n's prefix and terminal leaf.
func (n *node) grown() *node {
	var big *node
	switch n.kind {
	case k16:
		big = newInner(k48, n.loadPrefix())
	case k48:
		big = newInner(k256, n.loadPrefix())
	default:
		return n
	}
	big.term.Store(n.term.Load())
	n.eachChild(func(b byte, c *node) bool {
		big.addChild(b, c)
		return true
	})
	return big
}

// eachChild visits children in ascending byte order. Caller must hold the
// write lock or be operating on a quiescent tree.
func (n *node) eachChild(fn func(b byte, c *node) bool) {
	switch n.kind {
	case k16:
		cnt := int(n.b16.count.Load())
		type kv struct {
			b byte
			c *node
		}
		var tmp [16]kv
		for i := 0; i < cnt; i++ {
			tmp[i] = kv{byte(n.b16.keys[i].Load()), n.b16.children[i].Load()}
		}
		s := tmp[:cnt]
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j-1].b > s[j].b; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
		for _, e := range s {
			if !fn(e.b, e.c) {
				return
			}
		}
	case k48:
		for b := 0; b < 256; b++ {
			if s := n.b48.index[b].Load(); s != 0 {
				if !fn(byte(b), n.b48.children[s-1].Load()) {
					return
				}
			}
		}
	case k256:
		for b := 0; b < 256; b++ {
			if c := n.b256.children[b].Load(); c != nil {
				if !fn(byte(b), c) {
					return
				}
			}
		}
	}
}

// --- Tree ----------------------------------------------------------------

// Tree is a concurrent ART mapping byte-string keys to RIDs. The zero value
// is not usable; call New.
type Tree struct {
	root *node // permanent k256 root with empty prefix; never replaced
	size atomic.Int64
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: newInner(k256, nil)}
}

// Len returns the number of entries, counting tombstones.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Insert upserts key -> rid.
func (t *Tree) Insert(key []byte, rid uint64) {
	t.insert(key, rid, false)
}

// InsertTombstone records a deletion marker for key; Search will report the
// key as deleted rather than falling through to older index components.
func (t *Tree) InsertTombstone(key []byte) {
	t.insert(key, 0, true)
}

// Search returns the RID for key. found is false when the key is absent;
// tomb is true when the freshest entry is a deletion marker (rid invalid).
func (t *Tree) Search(key []byte) (rid uint64, found, tomb bool) {
	for {
		rid, found, tomb, ok := t.search(key)
		if ok {
			return rid, found, tomb
		}
	}
}

func matchLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func (t *Tree) search(key []byte) (rid uint64, found, tomb, ok bool) {
	n := t.root
	v, alive := n.rLock()
	if !alive {
		return 0, false, false, false
	}
	depth := 0
	for {
		p := n.loadPrefix()
		m := matchLen(p, key[depth:])
		if m < len(p) {
			if !n.rValidate(v) {
				return 0, false, false, false
			}
			return 0, false, false, true // diverges inside the prefix
		}
		depth += len(p)
		if depth == len(key) {
			l := n.term.Load()
			if !n.rValidate(v) {
				return 0, false, false, false
			}
			if l == nil {
				return 0, false, false, true
			}
			return l.rid, true, l.tomb, true
		}
		next := n.child(key[depth])
		if !n.rValidate(v) {
			return 0, false, false, false
		}
		if next == nil {
			return 0, false, false, true
		}
		if next.kind == kLeaf {
			if bytes.Equal(next.key, key) {
				return next.rid, true, next.tomb, true
			}
			return 0, false, false, true
		}
		depth++
		n = next
		v, alive = n.rLock()
		if !alive {
			return 0, false, false, false
		}
	}
}

// insert is the OLC upsert.
func (t *Tree) insert(key []byte, rid uint64, tomb bool) {
restart:
	n := t.root
	v, alive := n.rLock()
	if !alive {
		goto restart
	}
	{
		var parent *node
		var pv uint64
		var parentByte byte
		depth := 0
		for {
			p := n.loadPrefix()
			m := matchLen(p, key[depth:])
			if m < len(p) {
				// Key diverges inside n's compressed path: split the
				// prefix by interposing a new inner node. Needs the
				// parent (to swap the edge) and n (to trim its prefix).
				if parent == nil {
					goto restart // root has an empty prefix; cannot happen
				}
				if !parent.upgrade(pv) {
					goto restart
				}
				if !n.upgrade(v) {
					parent.unlock()
					goto restart
				}
				ni := newInner(k16, p[:m])
				ni.addChild(p[m], n)
				if depth+m == len(key) {
					ni.term.Store(newLeaf(key, rid, tomb))
				} else {
					ni.addChild(key[depth+m], newLeaf(key, rid, tomb))
				}
				n.setPrefix(p[m+1:])
				parent.replaceChild(parentByte, ni)
				n.unlock()
				parent.unlock()
				t.size.Add(1)
				return
			}
			depth += len(p)
			if depth == len(key) {
				// Key terminates at this node.
				if !n.upgrade(v) {
					goto restart
				}
				replaced := n.term.Load() != nil
				n.term.Store(newLeaf(key, rid, tomb))
				n.unlock()
				if !replaced {
					t.size.Add(1)
				}
				return
			}
			b := key[depth]
			next := n.child(b)
			if !n.rValidate(v) {
				goto restart
			}
			if next == nil {
				if n.full() {
					// Grow n into the next size class; the copy replaces
					// n under the parent's edge.
					if parent == nil {
						goto restart // root is k256 and never full
					}
					if !parent.upgrade(pv) {
						goto restart
					}
					if !n.upgrade(v) {
						parent.unlock()
						goto restart
					}
					big := n.grown()
					big.addChild(b, newLeaf(key, rid, tomb))
					parent.replaceChild(parentByte, big)
					n.unlockObsolete()
					parent.unlock()
					t.size.Add(1)
					return
				}
				if !n.upgrade(v) {
					goto restart
				}
				n.addChild(b, newLeaf(key, rid, tomb))
				n.unlock()
				t.size.Add(1)
				return
			}
			if next.kind == kLeaf {
				if bytes.Equal(next.key, key) {
					if !n.upgrade(v) {
						goto restart
					}
					n.replaceChild(b, newLeaf(key, rid, tomb))
					n.unlock()
					return
				}
				// Two distinct keys share the edge: push both under a
				// fresh inner node keyed past their common prefix.
				if !n.upgrade(v) {
					goto restart
				}
				ok := next.key
				common := matchLen(ok[depth+1:], key[depth+1:])
				ni := newInner(k16, key[depth+1:depth+1+common])
				d2 := depth + 1 + common
				if d2 == len(ok) {
					ni.term.Store(next)
				} else {
					ni.addChild(ok[d2], next)
				}
				if d2 == len(key) {
					ni.term.Store(newLeaf(key, rid, tomb))
				} else {
					ni.addChild(key[d2], newLeaf(key, rid, tomb))
				}
				n.replaceChild(b, ni)
				n.unlock()
				t.size.Add(1)
				return
			}
			// Descend.
			parent, pv, parentByte = n, v, b
			depth++
			n = next
			v, alive = n.rLock()
			if !alive || !parent.rValidate(pv) {
				goto restart
			}
		}
	}
}
