package art

// Merge implements the recursive two-tree merge of Section 4.5. It returns a
// new tree containing the union of t (the newer tree) and older; when both
// contain a key, t's entry wins. When dropTombstones is true, deletion
// markers are elided from the result (legal only when merging into the
// oldest component, where there is nothing left for a tombstone to mask).
//
// Both input trees must be quiescent (no concurrent writers); merging
// happens on frozen/read-only components in HiEngine. The inputs are not
// modified; the result shares no nodes with them.
func (t *Tree) Merge(older *Tree, dropTombstones bool) *Tree {
	out := New()
	m := &merger{out: out}
	m.mergeNodes(t.root, older.root, nil)
	if !dropTombstones {
		return out
	}
	// Tombstones must survive the structural merge itself (a newer
	// tombstone has to overwrite an older live entry before it can be
	// dropped); strip them in a final pass.
	clean := New()
	out.Scan(nil, nil, func(k []byte, rid uint64, tomb bool) bool {
		if !tomb {
			clean.Insert(k, rid)
		}
		return true
	})
	return clean
}

type merger struct {
	out *Tree
}

func (m *merger) emit(l *node) {
	if l == nil {
		return
	}
	m.out.insert(l.key, l.rid, l.tomb)
}

// emitSubtree inserts every entry under n into the output.
func (m *merger) emitSubtree(n *node) {
	if n == nil {
		return
	}
	if n.kind == kLeaf {
		m.emit(n)
		return
	}
	m.emit(n.term.Load())
	n.eachChild(func(_ byte, c *node) bool {
		m.emitSubtree(c)
		return true
	})
}

// mergeNodes walks a (newer) and b (older) in lockstep. The three cases of
// Section 4.5 -- inner/inner, inner/leaf, leaf/leaf -- reduce here to
// re-inserting diverging subtrees wholesale and recursing only where the two
// trees actually overlap, which is what bounds the work to the shared key
// space. depth tracking is implicit: leaves carry their full keys, so
// re-insertion needs no path reconstruction.
func (m *merger) mergeNodes(a, b *node, path []byte) {
	switch {
	case a == nil:
		m.emitSubtree(b)
		return
	case b == nil:
		m.emitSubtree(a)
		return
	}
	// Case 3: leaf / leaf.
	if a.kind == kLeaf && b.kind == kLeaf {
		if string(a.key) == string(b.key) {
			m.emit(a) // newer wins
		} else {
			m.emit(a)
			m.emit(b)
		}
		return
	}
	// Case 2: inner / leaf (either order): merge the leaf into the inner
	// subtree. Newer-wins is preserved by insertion order below.
	if a.kind == kLeaf {
		// a is the single newer entry; emit the whole older subtree
		// first, then overwrite with a.
		m.emitSubtree(b)
		m.emit(a)
		return
	}
	if b.kind == kLeaf {
		// Older single entry: insert it first so any equal key in a
		// overwrites it.
		m.emit(b)
		m.emitSubtree(a)
		return
	}
	// Case 1: inner / inner. Compare prefixes: if the compressed paths
	// diverge, the subtrees are key-disjoint and can be emitted
	// independently; if one prefix extends the other, the longer one is a
	// subtree of a single child position of the shorter; if equal, merge
	// children pairwise.
	pa, pb := a.loadPrefix(), b.loadPrefix()
	cm := matchLen(pa, pb)
	if cm < len(pa) && cm < len(pb) {
		// Prefixes diverge: disjoint key spaces.
		m.emitSubtree(a)
		m.emitSubtree(b)
		return
	}
	if len(pa) != len(pb) {
		// One node sits deeper: its whole subtree belongs under one
		// child byte of the shallower node. Recurse there and emit the
		// rest of the shallower node as-is.
		shallow, deep := a, b
		deepIsOlder := true
		if len(pa) > len(pb) {
			shallow, deep = b, a
			deepIsOlder = false
		}
		dp := deep.loadPrefix()
		edge := dp[len(shallow.loadPrefix())]
		m.emit(shallow.term.Load())
		shallow.eachChild(func(bb byte, c *node) bool {
			if bb != edge {
				// Keep ordering: shallow==b means these are older
				// entries and must go in before any newer ones, but
				// they are key-disjoint from deep so order is moot.
				m.emitSubtree(c)
			}
			return true
		})
		// Build a pseudo-node for deep with the prefix trimmed past the
		// edge byte, then recurse against the shallow node's child.
		trimmed := trimPrefix(deep, dp[len(shallow.loadPrefix())+1:])
		sc := shallow.child(edge)
		if deepIsOlder {
			m.mergeNodes(sc, trimmed, nil)
		} else {
			m.mergeNodes(trimmed, sc, nil)
		}
		return
	}
	// Equal prefixes: merge terminals and children pairwise.
	ta, tb := a.term.Load(), b.term.Load()
	if ta != nil {
		m.emit(ta)
	} else {
		m.emit(tb)
	}
	// Children: classic sorted two-pointer merge over byte order.
	var ac, bc []snapChild
	a.eachChild(func(bb byte, c *node) bool { ac = append(ac, snapChild{bb, c}); return true })
	b.eachChild(func(bb byte, c *node) bool { bc = append(bc, snapChild{bb, c}); return true })
	i, j := 0, 0
	for i < len(ac) || j < len(bc) {
		switch {
		case j >= len(bc) || (i < len(ac) && ac[i].b < bc[j].b):
			m.emitSubtree(ac[i].c)
			i++
		case i >= len(ac) || bc[j].b < ac[i].b:
			m.emitSubtree(bc[j].c)
			j++
		default:
			m.mergeNodes(ac[i].c, bc[j].c, nil)
			i++
			j++
		}
	}
}

// trimPrefix returns a view of n with its prefix replaced by p (used when a
// deeper node is aligned under a shallower node's child edge). Leaves are
// returned unchanged (their full keys make prefixes irrelevant).
func trimPrefix(n *node, p []byte) *node {
	if n.kind == kLeaf {
		return n
	}
	cp := &node{kind: n.kind, b16: n.b16, b48: n.b48, b256: n.b256}
	cp.term.Store(n.term.Load())
	cp.setPrefix(p)
	return cp
}
