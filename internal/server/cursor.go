// Streaming scans and batch writes: the server side of the cursor protocol
// (OpScanOpen/OpScanNext/OpScanClose) and of OpExecBatch.
//
// A cursor is a connection-scoped handle over a sqlfront.RowStream: one
// SELECT pinned to its own MVCC snapshot, drained in bounded pages. Each
// cursor leases its own worker slot (a pinned snapshot is engine work in
// flight, exactly like a transaction) and holds it until the scan is
// exhausted, closed, or the connection dies. The cursor table is bounded
// (Config.MaxCursors); reaping rides the connection lifecycle -- while any
// cursor is open the read loop waits under ReadTimeout instead of
// IdleTimeout, and teardown closes every cursor -- so an abandoned cursor
// can pin its slot for at most one read budget. Graceful drain finishes
// the page in flight and then refuses further OpScanNext with CodeClosed
// (handle()'s admission check), cancelling the cursor with the connection.
package server

import (
	"fmt"
	"strings"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/obs"
	"hiengine/internal/sqlfront"
	"hiengine/internal/wire"
)

// defaultFetchRows is the page row bound when the client requests none.
const defaultFetchRows = 256

// pageByteCap bounds a cursor page's encoded row bytes: the pager stops
// filling a page once it is reached, so peak per-scan buffering is one page
// (plus at most one row of overshoot) regardless of fetch size -- far below
// wire.MaxPayload, and small enough that a draining server finishes any
// in-flight page quickly.
const pageByteCap = 1 << 20

// cursorEntry is one open cursor: its row stream, the worker slot it
// leases, and its default page size.
type cursorEntry struct {
	rs    *sqlfront.RowStream
	slot  int
	fetch int
}

// leaseSlot acquires a worker slot from the pool with the bounded SlotWait,
// independent of the connection's per-transaction lease (cursors hold their
// own). tr may be nil.
func (s *Server) leaseSlot(tr *obs.Trace) (int, error) {
	tr.Begin(obs.StageSlotWait)
	defer tr.End(obs.StageSlotWait)
	select {
	case slot := <-s.slots:
		return slot, nil
	default:
	}
	t := time.NewTimer(s.cfg.SlotWait)
	defer t.Stop()
	select {
	case slot := <-s.slots:
		return slot, nil
	case <-t.C:
		s.mSlotWaitBusy.Inc()
		return 0, fmt.Errorf("no free worker slot in %v: %w", s.cfg.SlotWait, ErrServerBusy)
	}
}

// scanOpen handles OpScanOpen: parse/plan the SELECT, pin its snapshot in a
// dedicated stream transaction under a freshly leased worker slot, register
// the cursor and answer with the first page. Returns false only on a
// protocol violation (corrupt payload).
func (c *conn) scanOpen(reqID uint64, payload []byte, finish func(error, []byte)) bool {
	fetch, sql, args, err := wire.DecodeScanOpen(payload)
	if err != nil {
		c.s.mProtoErrs.Inc()
		finish(err, nil)
		return false
	}
	// A cursor pins its own snapshot, which would not see an open explicit
	// transaction's writes -- refuse rather than surprise.
	if c.sess.InTxn() {
		finish(fmt.Errorf("%w: cannot open a cursor inside an explicit transaction", wire.ErrBadStatement), nil)
		return true
	}
	if len(c.cursors) >= c.s.cfg.MaxCursors {
		finish(fmt.Errorf("%w: cursor table full (%d open)", wire.ErrBadStatement, len(c.cursors)), nil)
		return true
	}
	slot, err := c.s.leaseSlot(c.tr)
	if err != nil {
		finish(err, nil)
		return true
	}
	// The stream gets its own throwaway session bound to the leased slot:
	// the connection's session keeps serving interleaved statements while
	// the cursor is open, and an engine transaction must stay
	// single-goroutine (the stream's producer owns it). That ownership
	// split is why cursor stages are attributed here on the connection's
	// trace: the producer's transaction can never carry them.
	c.tr.Begin(obs.StageCursorOpen)
	rs, err := c.s.cfg.Frontend.NewSession(slot).ExecStream(sql, args...)
	c.tr.End(obs.StageCursorOpen)
	if err != nil {
		c.s.slots <- slot
		// Engine sentinels (closed, busy) keep their codes through the
		// wrap; everything else from open is a bad request.
		finish(fmt.Errorf("%w: %w", wire.ErrBadStatement, err), nil)
		return true
	}
	if fetch <= 0 {
		fetch = defaultFetchRows
	}
	if c.cursors == nil {
		c.cursors = make(map[uint64]*cursorEntry)
	}
	c.curSeq++
	id := c.curSeq
	ce := &cursorEntry{rs: rs, slot: slot, fetch: fetch}
	c.cursors[id] = ce
	c.s.mCursorsOpen.Add(1)
	c.cursorPage(reqID, id, ce, fetch, finish)
	return true
}

// scanNext handles OpScanNext: pull the next page from an open cursor. An
// unknown id -- never opened, exhausted (the server auto-closes on the done
// page), failed mid-scan, or torn down -- answers CodeCursorGone.
func (c *conn) scanNext(reqID uint64, payload []byte, finish func(error, []byte)) bool {
	id, fetch, err := wire.DecodeScanNext(payload)
	if err != nil {
		c.s.mProtoErrs.Inc()
		finish(err, nil)
		return false
	}
	ce := c.cursors[id]
	if ce == nil {
		finish(fmt.Errorf("%w: cursor %d", wire.ErrCursorGone, id), nil)
		return true
	}
	c.cursorPage(reqID, id, ce, fetch, finish)
	return true
}

// scanClose handles OpScanClose. Idempotent like OpCloseStmt: closing an
// unknown or already-finished cursor succeeds, so clients can close
// defensively.
func (c *conn) scanClose(payload []byte, finish func(error, []byte)) bool {
	id, err := wire.DecodeScanClose(payload)
	if err != nil {
		c.s.mProtoErrs.Inc()
		finish(err, nil)
		return false
	}
	if ce := c.cursors[id]; ce != nil {
		c.closeCursor(id, ce)
	}
	finish(nil, nil)
	return true
}

// cursorPage pulls one bounded page off the cursor's stream and responds
// with it. The page is bounded twice: at most fetch rows (the cursor's
// default when the request passed 0) and at most pageByteCap encoded bytes,
// whichever lands first. On exhaustion the page carries done=true and the
// cursor auto-closes; a mid-scan error closes the cursor and answers the
// classified error.
func (c *conn) cursorPage(reqID, id uint64, ce *cursorEntry, fetch int, finish func(error, []byte)) {
	if fetch <= 0 {
		fetch = ce.fetch
	}
	rowsBP := wire.GetBuf()
	rowData := (*rowsBP)[:0]
	n := 0
	done := false
	var serr error
	c.tr.Begin(obs.StageCursorProduce)
	for n < fetch && len(rowData) < pageByteCap {
		row, ok, err := ce.rs.NextRow()
		if err != nil {
			serr = err
			break
		}
		if !ok {
			done = true
			break
		}
		rowData = core.EncodeRow(rowData, row)
		n++
	}
	c.tr.End(obs.StageCursorProduce)
	*rowsBP = rowData
	if serr != nil {
		c.closeCursor(id, ce)
		wire.PutBuf(rowsBP)
		finish(serr, nil)
		return
	}
	if done {
		c.closeCursor(id, ce)
	}
	bp := wire.GetBuf()
	body := wire.AppendCursorPage((*bp)[:0], id, done, ce.rs.Columns, n, rowData)
	finish(nil, body)
	*bp = body
	wire.PutBuf(bp)
	wire.PutBuf(rowsBP)
}

// closeCursor finishes a cursor's stream (unwinding its producer and its
// pinned transaction), returns its worker slot and drops it from the table.
func (c *conn) closeCursor(id uint64, ce *cursorEntry) {
	ce.rs.Close()
	c.s.slots <- ce.slot
	delete(c.cursors, id)
	c.s.mCursorsOpen.Add(-1)
}

// closeAllCursors is teardown's cursor cleanup: every open cursor's
// snapshot and slot is released with the connection, which is also how
// idle-cursor reaping works (the read-loop timeout fails the connection,
// teardown reaps the cursors).
func (c *conn) closeAllCursors() {
	for id, ce := range c.cursors {
		c.closeCursor(id, ce)
	}
}

// isTxnControlText reports whether sql is a bare transaction verb (any
// case, optional trailing semicolon).
func isTxnControlText(sql string) bool {
	s := strings.ToUpper(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";")))
	return s == "BEGIN" || s == "COMMIT" || s == "ROLLBACK"
}

// execBatch handles OpExecBatch: N statements in one frame, one response
// with a per-statement affected vector. Outside an explicit transaction the
// batch is atomic -- it opens its own transaction and the response defers
// to the commit's durability callback, riding the same pipelined
// group-commit path as OpCommit. Inside one, the batch is simply N
// statements of the open transaction and answers immediately (durability
// comes with the eventual COMMIT). Any statement error aborts the rest of
// the batch; an auto-batch is rolled back whole. Transaction verbs inside a
// batch are refused -- they would break the one-response contract.
func (c *conn) execBatch(reqID uint64, payload []byte, finish func(error, []byte), release func()) bool {
	stmts, err := wire.DecodeExecBatch(payload)
	if err != nil {
		c.s.mProtoErrs.Inc()
		finish(err, nil)
		return false
	}
	if err := c.acquireSlot(); err != nil {
		finish(err, nil)
		return true
	}
	auto := !c.sess.InTxn()
	if auto {
		if err := c.sess.Begin(); err != nil {
			c.releaseSlot()
			finish(err, nil)
			return true
		}
	}
	fail := func(err error) {
		if auto && c.sess.InTxn() {
			c.sess.Rollback()
		}
		c.releaseSlot()
		finish(err, nil)
	}
	affected := make([]int, 0, len(stmts))
	for i, bs := range stmts {
		if isTxnControlText(bs.SQL) {
			fail(fmt.Errorf("%w: batch statement %d: transaction control not allowed in a batch", wire.ErrBadStatement, i))
			return true
		}
		st, err := c.sess.Prepare(bs.SQL)
		if err != nil {
			fail(fmt.Errorf("%w: batch statement %d: %v", wire.ErrBadStatement, i, err))
			return true
		}
		res, err := st.Exec(bs.Args...)
		if err != nil {
			fail(fmt.Errorf("batch statement %d: %w", i, err))
			return true
		}
		affected = append(affected, res.Affected)
	}
	if !auto {
		bp := wire.GetBuf()
		body := wire.AppendBatchResult((*bp)[:0], affected, c.sess.LastCSN())
		finish(nil, body)
		*bp = body
		wire.PutBuf(bp)
		return true
	}
	// Atomic auto-batch: answer at durability, exactly like commit().
	start := time.Now()
	respondOK := func(tr *obs.Trace) {
		bp := wire.GetBuf()
		body := wire.AppendBatchResult((*bp)[:0], affected, c.sess.LastCSN())
		c.respondTr(reqID, tr, wire.CodeOK, "", body)
		*bp = body
		wire.PutBuf(bp)
	}
	tr := c.tr
	c.tr = nil
	async, err := c.sess.CommitAsync(func(cerr error) {
		c.s.mCommitDur.Record(time.Since(start).Nanoseconds())
		if cerr != nil {
			c.respondTrErr(reqID, tr, cerr)
		} else {
			respondOK(tr)
		}
		release()
	})
	c.sess.SetTrace(nil)
	c.releaseSlot()
	if async {
		return true
	}
	if err != nil {
		c.respondTrErr(reqID, tr, err)
	} else {
		respondOK(tr)
	}
	release()
	return true
}
