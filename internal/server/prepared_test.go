package server

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/wire"
)

// TestPreparedFlow is the prepared-statement acceptance path: prepare,
// execute by id (autocommit and inside an explicit transaction), close,
// parameter-count errors, and a fully pipelined prepared transaction
// including a prepared COMMIT answered at durability.
func TestPreparedFlow(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}

	ins, err := s.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", ins.NumParams())
	}
	sel, err := s.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}

	// Autocommit executions by id.
	for i := int64(0); i < 5; i++ {
		if _, err := ins.Exec(core.I(i), core.S("v")); err != nil {
			t.Fatalf("prepared insert %d: %v", i, err)
		}
	}
	res, err := sel.Exec(core.I(3))
	if err != nil || len(res.Rows) != 1 || !res.Rows[0][0].Equal(core.S("v")) {
		t.Fatalf("prepared select: %v %+v", err, res)
	}

	// Wrong arity travels as the param-count sentinel (CodeBadRequest).
	_, err = ins.Exec(core.I(9))
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("param mismatch: want CodeBadRequest, got %v", err)
	}
	if !strings.Contains(we.Msg, "parameter count") {
		t.Fatalf("param mismatch message: %q", we.Msg)
	}
	// The failed call must not poison the statement.
	if _, err := ins.Exec(core.I(9), core.S("v")); err != nil {
		t.Fatalf("prepared insert after arity error: %v", err)
	}

	// Prepared statements inside an explicit transaction.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(core.I(100), core.S("txn")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if res, err := sel.Exec(core.I(100)); err != nil || len(res.Rows) != 1 {
		t.Fatalf("txn prepared insert not visible: %v %+v", err, res)
	}

	// Fully pipelined prepared transaction: BEGIN, two prepared inserts,
	// and a prepared COMMIT all in flight before the first response. The
	// prepared COMMIT must take the server's pipelined durability path.
	commit, err := s.Prepare("COMMIT")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	p1, err := ins.ExecPipe(core.I(200), core.S("p"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ins.ExecPipe(core.I(201), core.S("p"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := commit.ExecPipe()
	if err != nil {
		t.Fatal(err)
	}
	if s.InTxn() {
		t.Fatal("pipelined prepared COMMIT did not clear the txn flag")
	}
	for _, p := range []*client.Pending{p1, p2, pc} {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := sel.Exec(core.I(201)); err != nil || len(res.Rows) != 1 {
		t.Fatalf("pipelined prepared commit not visible: %v %+v", err, res)
	}

	// Close; execution afterwards is a client-side error.
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(core.I(1), core.S("v")); !errors.Is(err, client.ErrStmtClosed) {
		t.Fatalf("exec on closed stmt: want ErrStmtClosed, got %v", err)
	}
	// Closing twice is a no-op.
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
	// The session (and its other statement) still works.
	if _, err := sel.Exec(core.I(3)); err != nil {
		t.Fatalf("sibling stmt after close: %v", err)
	}
}

// TestPreparedRawProtocol drives the prepared opcodes with hand-built
// frames: unknown statement ids are per-request bad-request errors (the
// connection survives), close is idempotent, and a prepare beyond the
// statement-table bound is refused.
func TestPreparedRawProtocol(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxStmts = 4 }, nil)
	setup := h.client(t, nil)
	if _, err := setup.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if f, err := wire.ReadFrame(nc, false); err != nil || f.RequestID != 0 {
		t.Fatalf("greeting frame: id=%d err=%v", f.RequestID, err)
	}
	var reqID uint64
	roundTrip := func(op wire.Op, payload []byte) (wire.Code, string, []byte) {
		t.Helper()
		reqID++
		if err := wire.WriteFrame(nc, wire.Frame{RequestID: reqID, Op: op, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := wire.ReadFrame(nc, false)
		if err != nil {
			t.Fatal(err)
		}
		if f.RequestID != reqID {
			t.Fatalf("response id %d, want %d", f.RequestID, reqID)
		}
		code, msg, body, err := wire.DecodeResponse(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return code, msg, body
	}

	// Executing an id never issued is a bad request, not a dead connection.
	code, msg, _ := roundTrip(wire.OpExecStmt, wire.EncodeExecStmt(999, []core.Value{core.I(1)}))
	if code != wire.CodeBadRequest || !strings.Contains(msg, "unknown statement") {
		t.Fatalf("unknown stmt id: code=%v msg=%q", code, msg)
	}

	// Prepare and execute by id on the raw connection.
	code, msg, body := roundTrip(wire.OpPrepare, wire.EncodePrepare("INSERT INTO t VALUES (?)"))
	if code != wire.CodeOK {
		t.Fatalf("prepare: code=%v msg=%q", code, msg)
	}
	id, n, err := wire.DecodePrepareResult(body)
	if err != nil || n != 1 {
		t.Fatalf("prepare result: id=%d n=%d err=%v", id, n, err)
	}
	if code, msg, _ = roundTrip(wire.OpExecStmt, wire.EncodeExecStmt(id, []core.Value{core.I(1)})); code != wire.CodeOK {
		t.Fatalf("exec stmt: code=%v msg=%q", code, msg)
	}

	// Close is idempotent: both the live id and a never-issued id succeed.
	if code, msg, _ = roundTrip(wire.OpCloseStmt, wire.EncodeCloseStmt(id)); code != wire.CodeOK {
		t.Fatalf("close stmt: code=%v msg=%q", code, msg)
	}
	if code, msg, _ = roundTrip(wire.OpCloseStmt, wire.EncodeCloseStmt(id)); code != wire.CodeOK {
		t.Fatalf("re-close stmt: code=%v msg=%q", code, msg)
	}
	// The closed id is gone.
	if code, _, _ = roundTrip(wire.OpExecStmt, wire.EncodeExecStmt(id, []core.Value{core.I(2)})); code != wire.CodeBadRequest {
		t.Fatalf("exec closed stmt: code=%v", code)
	}

	// The statement table is bounded: the (MaxStmts+1)th prepare fails,
	// earlier ones survive.
	var ids []uint64
	for i := 0; i < 4; i++ {
		code, msg, body := roundTrip(wire.OpPrepare, wire.EncodePrepare("SELECT id FROM t WHERE id = ?"))
		if code != wire.CodeOK {
			t.Fatalf("prepare %d: code=%v msg=%q", i, code, msg)
		}
		pid, _, _ := wire.DecodePrepareResult(body)
		ids = append(ids, pid)
	}
	code, msg, _ = roundTrip(wire.OpPrepare, wire.EncodePrepare("SELECT id FROM t WHERE id = ?"))
	if code != wire.CodeBadRequest || !strings.Contains(msg, "statement table full") {
		t.Fatalf("over-bound prepare: code=%v msg=%q", code, msg)
	}
	if code, _, _ = roundTrip(wire.OpExecStmt, wire.EncodeExecStmt(ids[0], []core.Value{core.I(1)})); code != wire.CodeOK {
		t.Fatalf("stmt lost after bound rejection: code=%v", code)
	}
}

// TestPreparedDDLStaleness is the staleness regression over the wire: a
// statement prepared before DDL (possibly issued by a different
// connection) must not execute a stale plan -- the server revalidates the
// catalog generation and recompiles transparently.
func TestPreparedDDLStaleness(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE a (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO a VALUES (?, ?)", core.I(1), core.S("one")); err != nil {
		t.Fatal(err)
	}
	sel, err := s.Prepare("SELECT v FROM a WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sel.Exec(core.I(1)); err != nil || len(res.Rows) != 1 {
		t.Fatalf("pre-DDL prepared exec: %v %+v", err, res)
	}

	// DDL from a different connection stamps every cached plan stale.
	s2, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("CREATE TABLE b (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	inv := h.srv.cfg.Frontend.PlanCacheStats().Invalidations
	res, err := sel.Exec(core.I(1))
	if err != nil || len(res.Rows) != 1 || !res.Rows[0][0].Equal(core.S("one")) {
		t.Fatalf("post-DDL prepared exec: %v %+v", err, res)
	}
	if got := h.srv.cfg.Frontend.PlanCacheStats().Invalidations; got == inv {
		t.Fatal("prepared statement executed without revalidating across DDL")
	}

	// The stats opcode surfaces the plan cache counters remotely.
	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "plancache ") {
		t.Fatalf("stats missing plan cache line: %q", stats)
	}
}

// TestStmtHygienePooledReuse is the id-leak regression: closing a session
// must close its server-side statements before the connection returns to
// the pool, so the next lessee of the same server-side session starts
// with an empty statement table (observed via the stmts_open gauge).
func TestStmtHygienePooledReuse(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) { o.PoolSize = 1 })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	ins, err := s.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("SELECT id FROM t WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(core.I(1)); err != nil {
		t.Fatal(err)
	}
	open := h.reg.Gauge("server.stmts_open")
	if got := open.Load(); got != 2 {
		t.Fatalf("stmts_open = %d, want 2", got)
	}

	// Close round-trips the statement closes before pooling the conn.
	s.Close()
	if got := open.Load(); got != 0 {
		t.Fatalf("stmts_open = %d after session close, want 0 (ids leaked into the pool)", got)
	}

	// The next lessee reuses the same connection (PoolSize=1) and the same
	// server-side session: a stale handle must fail client-side, and fresh
	// prepares work.
	s2, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := ins.Exec(core.I(2)); !errors.Is(err, client.ErrStmtClosed) {
		t.Fatalf("stale handle on reused conn: want ErrStmtClosed, got %v", err)
	}
	ins2, err := s2.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins2.Exec(core.I(2)); err != nil {
		t.Fatal(err)
	}
	if got := open.Load(); got != 1 {
		t.Fatalf("stmts_open = %d, want 1", got)
	}
}

// TestIdleReap is the connection-starvation regression: a connection that
// sends nothing holds a MaxConns seat only until IdleTimeout; the reap
// frees the seat for a real client and the server keeps running.
func TestIdleReap(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.MaxConns = 1
		c.IdleTimeout = 150 * time.Millisecond
		c.ReadTimeout = 100 * time.Millisecond
	}, nil)

	// The slowloris: connect and go silent, pinning the only seat.
	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// While the seat is pinned, a second connection is refused busy.
	cl := h.client(t, func(o *client.Options) { o.MaxRetries = -1 })
	if err := cl.Ping(); !errors.Is(err, wire.ErrServerBusy) {
		t.Fatalf("want busy greeting while seat pinned, got %v", err)
	}

	// The idle conn is reaped: it sees a CodeClosed notice and/or EOF.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := nc.Read(buf); err != nil {
			break
		}
	}
	if got := h.reg.Counter("server.idle_reaped").Load(); got == 0 {
		t.Fatal("idle connection closed without an idle_reaped count")
	}

	// The seat is free again: a retrying client gets through.
	cl2 := h.client(t, func(o *client.Options) { o.MaxRetries = 20; o.RetryBase = 10 * time.Millisecond })
	if err := cl2.Ping(); err != nil {
		t.Fatalf("seat not released by idle reap: %v", err)
	}
}

// TestReadTimeoutMidFrame stalls a frame after its length prefix: the
// per-frame ReadTimeout must kill the connection even though the idle
// budget is long, because the frame has started arriving.
func TestReadTimeoutMidFrame(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.ReadTimeout = 100 * time.Millisecond
		c.IdleTimeout = time.Hour // only the per-frame budget may fire
	}, nil)

	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Declare a 100-byte frame and never send the body.
	if _, err := nc.Write(binary.BigEndian.AppendUint32(nil, 100)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := nc.Read(buf); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("mid-frame stall survived %v (ReadTimeout 100ms)", waited)
	}
	if got := h.reg.Counter("server.read_timeouts").Load(); got == 0 {
		t.Fatal("mid-frame stall closed without a read_timeouts count")
	}
	// The server is fine.
	if err := h.client(t, nil).Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestReadTimeoutReleasesSlot stalls a client inside an open transaction:
// the in-txn read budget reaps it, the rollback in teardown releases the
// single worker slot, and a second client's transaction proceeds.
func TestReadTimeoutReleasesSlot(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.WorkerSlots = 1
		c.SlotWait = 20 * time.Millisecond
		c.ReadTimeout = 150 * time.Millisecond
	}, nil)
	cl := h.client(t, func(o *client.Options) { o.MaxRetries = -1 })

	sa, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if err := sa.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Exec("INSERT INTO t VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}
	// sa now holds the only worker slot and goes silent (the stall).

	// A second client's transaction succeeds once the reap frees the slot;
	// busy rejections before that are retried.
	cl2 := h.client(t, func(o *client.Options) { o.MaxRetries = 30; o.RetryBase = 10 * time.Millisecond })
	s2, err := cl2.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Begin(); err != nil {
		t.Fatalf("slot never released by in-txn read timeout: %v", err)
	}
	if _, err := s2.Exec("INSERT INTO t VALUES (?)", core.I(2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := h.reg.Counter("server.read_timeouts").Load(); got == 0 {
		t.Fatal("stalled in-txn connection was not counted as a read timeout")
	}
	// The stalled session's abandoned write must not be visible.
	res, err := s2.Exec("SELECT id FROM t WHERE id = ?", core.I(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("write from reaped transaction is visible")
	}
}

// TestTimeoutsUnderReadChaos arms the read-delay chaos site with timeouts
// configured: injected read delays (which model a congested link after a
// frame has arrived) must not be charged against the deadline budget of
// well-behaved traffic, while a genuinely silent connection is still
// reaped.
func TestTimeoutsUnderReadChaos(t *testing.T) {
	eng := chaos.New(7)
	eng.Arm(chaos.Rule{Site: SiteRead, Action: chaos.Delay, Prob: 0.5, Delay: 2 * time.Millisecond})
	h := newHarness(t, func(c *Config) {
		c.ReadTimeout = 300 * time.Millisecond
		c.IdleTimeout = 400 * time.Millisecond
	}, eng)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	ins, err := s.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	// Steady prepared traffic under injected delays, spread over several
	// idle windows: no statement may fail, no false reap may fire.
	for i := int64(0); i < 40; i++ {
		if _, err := ins.Exec(core.I(i), core.S("v")); err != nil {
			t.Fatalf("insert %d under read chaos: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := h.reg.Counter("server.read_timeouts").Load(); got != 0 {
		t.Fatalf("well-behaved traffic hit %d read timeouts", got)
	}

	// A silent conn still reaps while chaos is armed.
	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := nc.Read(buf); err != nil {
			break
		}
	}
	if got := h.reg.Counter("server.idle_reaped").Load(); got == 0 {
		t.Fatal("idle connection survived with chaos armed")
	}
}
