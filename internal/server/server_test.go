package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hiengine/internal/adapt"
	"hiengine/internal/baseline/innosim"
	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// harness is one running deployment: engine + baseline behind a frontend,
// served on a loopback listener.
type harness struct {
	engine *core.Engine
	inno   *innosim.DB
	srv    *Server
	addr   string
	reg    *obs.Registry
}

func newHarness(t *testing.T, mutate func(*Config), eng *chaos.Engine) *harness {
	return newHarnessModel(t, delay.Zero(), mutate, eng)
}

func newHarnessModel(t *testing.T, model *delay.Model, mutate func(*Config), eng *chaos.Engine) *harness {
	t.Helper()
	reg := obs.NewRegistry("servertest")
	// The chaos engine reaches the storage stack (wal, srss sites) through
	// the SRSS service, so server-level tests can also inject storage
	// faults; tests that arm only server sites are unaffected.
	engine, err := core.Open(core.Config{
		Service:     srss.New(srss.Config{Model: model, Chaos: eng}),
		Workers:     8,
		SegmentSize: 1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	inno, err := innosim.New(innosim.Config{
		Service:     srss.New(srss.Config{Model: delay.Zero()}),
		SegmentSize: 1 << 22,
	})
	if err != nil {
		engine.Close()
		t.Fatal(err)
	}
	front := sqlfront.NewFrontend("hiengine", adapt.New(engine))
	front.Register("innodb", inno)
	cfg := Config{
		Frontend:    front,
		WorkerSlots: engine.Workers(),
		Chaos:       eng,
		Obs:         reg,
		Stats: func() string {
			s := engine.Stats()
			return fmt.Sprintf("commits=%d aborts=%d conflicts=%d\n",
				s.Commits.Load(), s.Aborts.Load(), s.Conflicts.Load())
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		inno.Close()
		engine.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	h := &harness{engine: engine, inno: inno, srv: srv, addr: ln.Addr().String(), reg: reg}
	t.Cleanup(func() {
		h.srv.Close()
		h.inno.Close()
		h.engine.Close()
	})
	return h
}

func (h *harness) client(t *testing.T, mutate func(*client.Options)) *client.Client {
	t.Helper()
	opts := client.Options{Addr: h.addr}
	if mutate != nil {
		mutate(&opts)
	}
	cl, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestRemoteBasic is the acceptance path: a remote session creates tables
// on both registered engines, runs a transactional write, reads it back
// across both engines, and fetches the stats snapshot.
func TestRemoteBasic(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Ping(); err != nil {
		t.Fatal(err)
	}
	mustExec := func(sql string, args ...core.Value) *wire.Result {
		t.Helper()
		res, err := s.Exec(sql, args...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec("CREATE TABLE fast (id INT, v TEXT, PRIMARY KEY(id))")
	mustExec("CREATE TABLE slow (id INT, v TEXT, PRIMARY KEY(id)) WITH ENGINE=innodb")

	// Transactional write on the default engine, via SQL text (routed to
	// the dedicated opcodes, so the commit takes the pipelined path).
	mustExec("BEGIN")
	if !s.InTxn() {
		t.Fatal("not in txn after BEGIN")
	}
	mustExec("INSERT INTO fast VALUES (?, ?)", core.I(1), core.S("one"))
	mustExec("INSERT INTO fast VALUES (?, ?)", core.I(2), core.S("two"))
	mustExec("COMMIT")
	if s.InTxn() {
		t.Fatal("still in txn after COMMIT")
	}

	// A transaction on the second engine.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec("INSERT INTO slow VALUES (?, ?)", core.I(1), core.S("uno"))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	res := mustExec("SELECT v FROM fast WHERE id = ?", core.I(2))
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(core.S("two")) {
		t.Fatalf("fast read: %+v", res.Rows)
	}
	res = mustExec("SELECT v FROM slow WHERE id = ?", core.I(1))
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(core.S("uno")) {
		t.Fatalf("slow read: %+v", res.Rows)
	}

	// Rollback is visible.
	mustExec("BEGIN")
	mustExec("INSERT INTO fast VALUES (?, ?)", core.I(9), core.S("gone"))
	mustExec("ROLLBACK")
	if res := mustExec("SELECT v FROM fast WHERE id = ?", core.I(9)); len(res.Rows) != 0 {
		t.Fatalf("rolled-back row visible: %+v", res.Rows)
	}

	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "commits=") {
		t.Fatalf("stats snapshot missing engine counters: %q", stats)
	}

	// Pipelined path: several statements in flight, commit answered at
	// durability, all out-of-order completions resolve.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	p1, err := s.ExecPipe("INSERT INTO fast VALUES (?, ?)", core.I(10), core.S("a"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.ExecPipe("INSERT INTO fast VALUES (?, ?)", core.I(11), core.S("b"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := s.CommitPipe()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*client.Pending{p1, p2, pc} {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if res := mustExec("SELECT v FROM fast WHERE id = ?", core.I(11)); len(res.Rows) != 1 {
		t.Fatalf("pipelined commit not visible: %+v", res.Rows)
	}
}

// TestFramingViolations sends torn, oversize, and garbage bytes at a live
// server: each must fail only the offending connection; the server keeps
// serving fresh connections.
func TestFramingViolations(t *testing.T) {
	h := newHarness(t, nil, nil)

	send := func(raw []byte, closeAfter bool) {
		t.Helper()
		nc, err := net.Dial("tcp", h.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write(raw); err != nil {
			t.Fatal(err)
		}
		if closeAfter {
			nc.(*net.TCPConn).CloseWrite()
		}
		// The server must close the connection (possibly after a
		// best-effort CodeBadRequest notice). Drain until EOF.
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			f, err := wire.ReadFrame(nc, false)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return // connection closed, as required
				}
				t.Fatalf("unexpected read error: %v", err)
			}
			code, _, _, derr := wire.DecodeResponse(f.Payload)
			if derr == nil && code == wire.CodeOK && f.RequestID == 0 {
				continue // the connection greeting
			}
			if derr != nil || code != wire.CodeBadRequest {
				t.Fatalf("unexpected pre-close frame: code=%v err=%v", code, derr)
			}
		}
	}

	// Garbage that is not a frame at all.
	send([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), false)
	// Oversize declared length.
	send(binary.BigEndian.AppendUint32(nil, wire.MaxFrame+1), false)
	// Unknown opcode in a well-formed frame.
	send(wire.AppendFrame(nil, wire.Frame{RequestID: 1, Op: wire.Op(42)}), false)
	// Torn frame: half a header, then the client goes away.
	send(binary.BigEndian.AppendUint32(nil, 100)[:3], true)
	// Well-formed frame with a corrupt exec payload.
	send(wire.AppendFrame(nil, wire.Frame{RequestID: 1, Op: wire.OpExec, Payload: []byte{250, 1}}), false)
	// Exec payload whose argument row declares a near-2^64 string length:
	// must decode as corrupt (bad request + connection close), never reach
	// the allocator and panic the process.
	hostile := binary.AppendUvarint(nil, 1) // sql = "x"
	hostile = append(hostile, 'x')
	hostile = append(hostile, 1, byte(core.KindString)) // 1-column arg row
	hostile = binary.AppendUvarint(hostile, math.MaxUint64)
	send(wire.AppendFrame(nil, wire.Frame{RequestID: 1, Op: wire.OpExec, Payload: hostile}), false)

	// The server is still alive for a well-behaved client.
	cl := h.client(t, nil)
	if err := cl.Ping(); err != nil {
		t.Fatalf("server did not survive framing abuse: %v", err)
	}
}

// TestSessionCloseAbortsTxn closes a session mid-transaction: the abort
// must round-trip before the connection returns to the pool, so the next
// lessee of the same connection (= same server-side session) starts
// clean and the abandoned writes never commit.
func TestSessionCloseAbortsTxn(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) { o.MaxRetries = -1 })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The pool holds one connection; the next session reuses it. A leaked
	// transaction would make Begin fail ("transaction already open") and
	// autocommit statements silently run inside the stale transaction.
	s2, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Begin(); err != nil {
		t.Fatalf("pooled connection inherited a stale transaction: %v", err)
	}
	if _, err := s2.Exec("INSERT INTO t VALUES (?)", core.I(2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Exec("SELECT * FROM t WHERE id = ?", core.I(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("insert abandoned by Close is visible: %+v", res.Rows)
	}
}

// TestOversizeResultError asks for a scan result too large for one frame:
// the server must answer a clean per-request bad-request error (never
// write an over-MaxFrame frame the client would kill the connection
// over), and the connection must stay usable for bounded queries.
func TestOversizeResultError(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) { o.MaxRetries = -1 })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE big (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	wide := strings.Repeat("x", 1<<20)
	for i := 0; i < 17; i++ { // ~17 MiB of result, over the 16 MiB frame cap
		if _, err := s.Exec("INSERT INTO big VALUES (?, ?)", core.I(int64(i)), core.S(wide)); err != nil {
			t.Fatal(err)
		}
	}

	_, err = s.Exec("SELECT * FROM big")
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("oversize result: want CodeBadRequest, got %v", err)
	}
	if !strings.Contains(we.Msg, "too large") {
		t.Fatalf("oversize result message: %q", we.Msg)
	}

	// Same session, same connection: a bounded query still works.
	res, err := s.Exec("SELECT v FROM big WHERE id = ?", core.I(3))
	if err != nil {
		t.Fatalf("connection died after oversize result: %v", err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0][0].Str()) != 1<<20 {
		t.Fatalf("bounded read after oversize result: %+v", len(res.Rows))
	}
}

// TestPoolExhaustionRetryable leases the whole pool and checks that the
// session-acquisition timeout is a retryable *wire.Error (CodeBusy), per
// the retryability matrix, so Client.Exec backs off across it instead of
// failing fast.
func TestPoolExhaustionRetryable(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) {
		o.PoolSize = 1
		o.RequestTimeout = 50 * time.Millisecond
		o.MaxRetries = 10
		o.RetryBase = 5 * time.Millisecond
	})

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}

	_, err = cl.Session() // pool exhausted: must time out retryable
	var we *wire.Error
	if !errors.As(err, &we) || !we.Retryable() || !errors.Is(err, wire.ErrServerBusy) {
		t.Fatalf("pool exhaustion must be a retryable busy wire error, got %v", err)
	}

	// Client.Exec's retry loop rides the busy code: it succeeds once the
	// held session frees the pool slot.
	go func() {
		time.Sleep(100 * time.Millisecond)
		s.Close()
	}()
	if _, err := cl.Exec("INSERT INTO t VALUES (?)", core.I(1)); err != nil {
		t.Fatalf("exec did not retry across pool exhaustion: %v", err)
	}
}

// TestBusyBackpressure exhausts the single worker slot and checks the
// typed, retryable rejection; a retrying client eventually gets through.
func TestBusyBackpressure(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.WorkerSlots = 1
		c.SlotWait = 20 * time.Millisecond
	}, nil)
	cl := h.client(t, func(o *client.Options) { o.MaxRetries = -1 }) // no retry

	sa, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	if _, err := sa.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if err := sa.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Exec("INSERT INTO t VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}

	// The slot is leased to sa's transaction: sb must be refused with the
	// retryable busy code, visible through errors.Is on both sentinels.
	sb, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	err = sb.Begin()
	if !errors.Is(err, wire.ErrServerBusy) || !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy, got %v", err)
	}
	var we *wire.Error
	if !errors.As(err, &we) || !we.Retryable() {
		t.Fatalf("busy must be retryable: %v", err)
	}

	// A retrying client succeeds once the slot frees.
	done := make(chan error, 1)
	go func() {
		cl2 := h.client(t, func(o *client.Options) {
			o.MaxRetries = 10
			o.RetryBase = 10 * time.Millisecond
		})
		_, err := cl2.Exec("INSERT INTO t VALUES (?)", core.I(2))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := sa.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("retrying client never got the slot: %v", err)
	}
}

// TestFatalFailFast closes the engine under the server: clients must see
// the fatal closed code (errors.Is core.ErrClosed) and must not retry.
func TestFatalFailFast(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) {
		o.MaxRetries = 10
		o.RetryBase = 50 * time.Millisecond
	})
	if _, err := cl.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	h.engine.Close()

	start := time.Now()
	_, err := cl.Exec("INSERT INTO t VALUES (?)", core.I(1))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrClosed) {
		t.Fatalf("want core.ErrClosed across the wire, got %v", err)
	}
	var we *wire.Error
	if !errors.As(err, &we) || !wire.Fatal(we.Code) || we.Retryable() {
		t.Fatalf("closed engine must map to a fatal code: %v", err)
	}
	// Fatal means no backoff loop: with 10 x 50ms retries configured, a
	// fail-fast answer comes back well before even one backoff.
	if elapsed > 40*time.Millisecond {
		t.Fatalf("fatal error took %v: client retried a non-retryable code", elapsed)
	}
}

// TestKilledServer hard-closes the listener and connections mid-session:
// clients fail fast with I/O errors, never a retry storm.
func TestKilledServer(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) {
		o.MaxRetries = 10
		o.RetryBase = 50 * time.Millisecond
		o.DialTimeout = 200 * time.Millisecond
	})
	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}

	// Kill: drain with an already-expired deadline to force-close conns.
	h.srv.draining.Store(true)
	h.srv.Close()

	start := time.Now()
	_, err = s.Exec("INSERT INTO t VALUES (?)", core.I(1))
	if err == nil {
		t.Fatal("exec succeeded on a killed server")
	}
	if retry := time.Since(start); retry > 2*time.Second {
		t.Fatalf("killed-server error took %v: retry storm", retry)
	}
	var we *wire.Error
	if errors.As(err, &we) && we.Retryable() {
		t.Fatalf("killed-server error must not be retryable: %v", err)
	}
}

// TestMaxConnsGreeting checks the greeting rejection: a connection beyond
// MaxConns is refused with a CodeBusy frame the client surfaces as the
// retryable busy sentinel.
func TestMaxConnsGreeting(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxConns = 1 }, nil)
	cl1 := h.client(t, nil)
	s1, err := cl1.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if err := s1.Ping(); err != nil { // pins the only connection slot
		t.Fatal(err)
	}

	cl2 := h.client(t, func(o *client.Options) { o.MaxRetries = -1 })
	err = cl2.Ping()
	if !errors.Is(err, wire.ErrServerBusy) {
		t.Fatalf("want greeting ErrServerBusy, got %v", err)
	}
}

// TestGracefulDrain shuts down while a pipelined commit is in flight: the
// drain must wait for its durability callback, the commit must succeed,
// and Shutdown must return nil (no timeout). The cloud latency model
// keeps the commit in its durability wait long enough to observe it
// admitted (via the inflight gauge) before the drain starts.
func TestGracefulDrain(t *testing.T) {
	h := newHarnessModel(t, delay.CloudProfile(), nil, nil)
	cl := h.client(t, nil)
	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE t (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}
	pc, err := s.CommitPipe()
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the commit is admitted (it holds its in-flight token
	// until the durability callback answers). If the window is missed the
	// commit already answered, which the assertions below still cover.
	inflight := h.reg.Gauge("server.inflight")
	for end := time.Now().Add(2 * time.Second); inflight.Load() == 0 && time.Now().Before(end); {
		time.Sleep(50 * time.Microsecond)
	}
	if err := h.srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := pc.Wait(); err != nil {
		t.Fatalf("in-flight commit lost by drain: %v", err)
	}
	// New work is refused.
	cl2 := h.client(t, func(o *client.Options) {
		o.MaxRetries = -1
		o.DialTimeout = 200 * time.Millisecond
	})
	if err := cl2.Ping(); err == nil {
		t.Fatal("ping succeeded after drain")
	}
}

// --- chaos soak ------------------------------------------------------------

// pairState is the oracle's record of one two-key transaction.
type pairState struct {
	k1, k2 int64
	// outcome: +1 committed, -1 aborted, 0 ambiguous (connection died
	// around the commit; either fate is legal, but atomically).
	outcome int
}

// TestSoakChaos is the race-enabled soak: N clients run mixed
// explicit-transaction and autocommit traffic over real TCP while chaos
// drops connections mid-response, rejects accepts, and delays reads. An
// oracle tracks every transaction's fate from the client's view; after
// the storm the database must agree, and every two-key transaction must
// be atomic. Shutdown must then drain cleanly.
func TestSoakChaos(t *testing.T) {
	eng := chaos.New(0xC0FFEE)
	eng.Arm(chaos.Rule{Site: SiteWrite, Action: chaos.Fault, Prob: 0.02})
	eng.Arm(chaos.Rule{Site: SiteAccept, Action: chaos.Fault, Prob: 0.10})
	eng.Arm(chaos.Rule{Site: SiteRead, Action: chaos.Delay, Prob: 0.05, Delay: 200 * time.Microsecond})

	h := newHarness(t, func(c *Config) {
		c.DrainTimeout = 10 * time.Second
		// Timeouts armed but generous: chaos read delays and storm-induced
		// stalls must never be misread as slowloris connections.
		c.ReadTimeout = 2 * time.Second
		c.IdleTimeout = 5 * time.Second
	}, eng)

	setup := h.client(t, func(o *client.Options) { o.MaxRetries = 20; o.RetryBase = time.Millisecond })
	if _, err := setup.Exec("CREATE TABLE soak (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}

	const nClients = 8
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 300 * time.Millisecond
	}

	var (
		mu        sync.Mutex
		pairs     []pairState
		autoKeys  []int64 // autocommit inserts confirmed committed
		conflicts int
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(dur)
	for ci := 0; ci < nClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := h.client(t, func(o *client.Options) {
				o.Seed = uint64(ci + 1)
				o.MaxRetries = 20
				o.RetryBase = time.Millisecond
				o.RequestTimeout = 5 * time.Second
			})
			key := int64(ci+1) << 22 // disjoint per-client ranges
			for seq := int64(0); time.Now().Before(deadline); seq++ {
				if seq%4 == 3 {
					// Autocommit insert: Client.Exec retries busy codes.
					k := key + 1<<21 + seq
					if _, err := cl.Exec("INSERT INTO soak VALUES (?, ?)",
						core.I(k), core.S("auto")); err == nil {
						mu.Lock()
						autoKeys = append(autoKeys, k)
						mu.Unlock()
					}
					continue
				}
				// Two-key explicit transaction; even sequences run through
				// prepared handles so the prepared path soaks under the same
				// chaos as the text path. A prepare failure happens before
				// anything is written, so it counts as stage 0 (aborted).
				usePrepared := seq%2 == 0
				k1, k2 := key+2*seq, key+2*seq+1
				p := pairState{k1: k1, k2: k2}
				s, err := cl.Session()
				if err != nil {
					continue // pool/greeting pressure; nothing started
				}
				stage := 0
				err = func() error {
					var ins *client.Stmt
					if usePrepared {
						var perr error
						if ins, perr = s.Prepare("INSERT INTO soak VALUES (?, ?)"); perr != nil {
							return perr
						}
					}
					insert := func(k int64, v string) error {
						if usePrepared {
							_, err := ins.Exec(core.I(k), core.S(v))
							return err
						}
						_, err := s.Exec("INSERT INTO soak VALUES (?, ?)", core.I(k), core.S(v))
						return err
					}
					if err := s.Begin(); err != nil {
						return err
					}
					stage = 1
					if err := insert(k1, "a"); err != nil {
						return err
					}
					if err := insert(k2, "b"); err != nil {
						return err
					}
					stage = 2
					return s.Commit()
				}()
				s.Close() // closes any prepared handle before pooling the conn
				switch {
				case err == nil:
					p.outcome = +1
				case stage < 2:
					// Failed before commit was sent: the server aborts the
					// transaction (explicitly or via connection teardown).
					p.outcome = -1
				default:
					// Commit round trip failed. A definitive wire response
					// means not committed; a dead connection is ambiguous
					// (the response may have been dropped mid-write after
					// the commit went durable).
					var we *wire.Error
					if errors.As(err, &we) {
						p.outcome = -1
						if we.Code == wire.CodeConflict {
							mu.Lock()
							conflicts++
							mu.Unlock()
						}
					} else {
						p.outcome = 0
					}
				}
				mu.Lock()
				pairs = append(pairs, p)
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()

	// Calm the network and audit the oracle through a clean client.
	eng.Disarm(SiteWrite)
	eng.Disarm(SiteAccept)
	eng.Disarm(SiteRead)
	verify := h.client(t, func(o *client.Options) { o.MaxRetries = 20; o.RetryBase = time.Millisecond })
	present := func(k int64) bool {
		t.Helper()
		res, err := verify.Exec("SELECT v FROM soak WHERE id = ?", core.I(k))
		if err != nil {
			t.Fatalf("verify read %d: %v", k, err)
		}
		return len(res.Rows) > 0
	}

	var committed, aborted, ambiguous int
	for _, p := range pairs {
		a, b := present(p.k1), present(p.k2)
		if a != b {
			t.Fatalf("atomicity violated: pair (%d,%d) split %v/%v (outcome %d)", p.k1, p.k2, a, b, p.outcome)
		}
		switch p.outcome {
		case +1:
			if !a {
				t.Fatalf("durability violated: committed pair (%d,%d) missing", p.k1, p.k2)
			}
			committed++
		case -1:
			if a {
				t.Fatalf("aborted pair (%d,%d) is visible", p.k1, p.k2)
			}
			aborted++
		default:
			ambiguous++
		}
	}
	for _, k := range autoKeys {
		if !present(k) {
			t.Fatalf("autocommit key %d acknowledged but missing", k)
		}
	}
	if committed == 0 {
		t.Fatal("soak committed nothing: chaos too aggressive to be meaningful")
	}
	if conflicts > 0 {
		t.Fatalf("disjoint key ranges produced %d conflicts", conflicts)
	}
	t.Logf("soak: %d clients, %d pairs (%d committed, %d aborted, %d ambiguous), %d autocommit; chaos fired: write=%d accept=%d read=%d",
		nClients, len(pairs), committed, aborted, ambiguous, len(autoKeys),
		eng.Fired(SiteWrite), eng.Fired(SiteAccept), eng.Fired(SiteRead))

	if err := h.srv.Close(); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
}
