// Package server is HiEngine's network service layer: a TCP server speaking
// the internal/wire protocol in front of a sqlfront.Frontend, turning the
// in-process engine into the cloud service of the paper's Figure 3 (one SQL
// frontend, many remote application connections).
//
// Architecture:
//
//   - One connection is one session. Requests on a connection execute
//     serially (SQL sessions are stateful: an open transaction binds
//     statements together), but responses may return out of order: a
//     commit answers only when its log records are durable, via the
//     engine's pipelined-commit path (sqlfront.Session.CommitAsync), while
//     the session keeps executing later statements. Many connections'
//     commits therefore batch into the WAL group commit -- the regime the
//     per-worker log buffers of Section 4.2 are built for.
//
//   - Statements prepare once, execute many: OpPrepare compiles a SQL text
//     through the frontend plan cache and issues a connection-scoped
//     statement id; OpExecStmt binds an argument row straight into the
//     compiled plan (the wire form of Section 3.3's one-time full-stack
//     code generation). Unprepared OpExec traffic shares the same plan
//     cache keyed by SQL text, so it too stops re-parsing after first
//     sight. Statement tables are bounded (MaxStmts) and die with the
//     connection.
//
//   - Silence is bounded: IdleTimeout reaps connections that hold a
//     MaxConns seat without sending anything; ReadTimeout bounds a frame's
//     arrival once started (slowloris) and all waiting while a transaction
//     pins a leased worker slot. Timeouts fail the connection, never the
//     server, and release every resource the connection held.
//
//   - Admission control is typed backpressure, never unbounded queueing:
//     connections beyond MaxConns are greeted with a CodeBusy frame and
//     closed; requests beyond MaxInFlight get CodeBusy responses; worker
//     slots (the engine's bounded session slots) are leased per
//     transaction with a bounded wait, then CodeBusy. Clients see
//     wire.ErrServerBusy, which is retryable; fatal conditions
//     (fail-stopped or closed engine, draining server) carry fatal codes
//     that clients must not retry.
//
//   - Shutdown drains: the listener closes, new requests are refused with
//     CodeClosed (fatal, so clients fail fast instead of retry-storming),
//     and in-flight requests -- including commits waiting on durability
//     callbacks -- complete before connections are torn down.
//
// Framing violations (torn, oversize, garbage frames) fail the offending
// connection, never the server.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/obs"
	"hiengine/internal/sqlfront"
	"hiengine/internal/srss"
	"hiengine/internal/wire"
)

// Chaos injection sites owned by this package. Faults here are transient
// (chaos.Fault / chaos.Delay): they degrade one connection, not the
// process, so client retry logic can be exercised against them.
const (
	// SiteAccept fires per accepted connection: a Fault rejects it
	// (closed before the handshake), a Delay slows the accept loop.
	SiteAccept = "server.accept"
	// SiteRead fires per received request frame: a Fault fails the
	// connection as if the read had torn, a Delay models a congested
	// inbound link.
	SiteRead = "server.conn.read"
	// SiteWrite fires per response write: a Fault drops the connection
	// mid-response (a partial frame reaches the client), a Delay models a
	// congested outbound link.
	SiteWrite = "server.conn.write"
	// Site2PCAck fires after a prepare or decision record is durable but
	// before its acknowledgement is written: the canonical 2PC in-doubt
	// window. Any injected error (fault or crash) drops the connection
	// without responding, so the coordinator sees a dead peer while the
	// participant's state is already durable.
	Site2PCAck = "server.2pc.ack"
)

func init() {
	chaos.RegisterSite(SiteAccept, "reject (fault) or slow (delay) an accepted connection")
	chaos.RegisterSite(SiteRead, "fail the connection (fault) or slow (delay) a request read")
	chaos.RegisterSite(SiteWrite, "drop the connection mid-response (fault) or slow (delay) a response write")
	chaos.RegisterSite(Site2PCAck, "lose a durable prepare/decision acknowledgement (the in-doubt window)")
}

// ErrServerBusy is the admission-control sentinel (alias of the wire-level
// sentinel so errors.Is matches on either side of the boundary).
var ErrServerBusy = wire.ErrServerBusy

// Config configures a Server.
type Config struct {
	// Frontend is the SQL layer served to remote sessions. Required.
	Frontend *sqlfront.Frontend
	// WorkerSlots is the engine's session-slot count: at most this many
	// transactions run concurrently, and a transaction leases its slot
	// for its whole lifetime. Required > 0 (use Engine.Workers()).
	WorkerSlots int
	// MaxConns bounds concurrent connections (default 256). Excess
	// connections receive a CodeBusy greeting frame and are closed.
	MaxConns int
	// MaxInFlight bounds requests admitted but not yet answered,
	// including commits awaiting durability (default 4096). Excess
	// requests are answered CodeBusy immediately.
	MaxInFlight int
	// SlotWait bounds how long a transaction waits for a free worker
	// slot before CodeBusy (default 250ms). This is the only bounded
	// queue in the admission path.
	SlotWait time.Duration
	// ReadTimeout bounds a request frame's arrival once its first bytes
	// are on the wire, and bounds inter-statement idle time while a
	// transaction is open (default 30s). A peer that stalls mid-frame
	// (slowloris) or stalls holding a transaction -- and with it a leased
	// worker slot -- fails its own connection; the slot and the MaxConns
	// seat are released, the server is unaffected.
	ReadTimeout time.Duration
	// IdleTimeout reaps connections with no open transaction that send
	// nothing at all (default 5m): abandoned application connections
	// release their MaxConns seat instead of pinning it forever.
	IdleTimeout time.Duration
	// MaxStmts bounds each connection's prepared-statement table
	// (default 256). Prepare beyond the bound is CodeBadRequest.
	MaxStmts int
	// MaxCursors bounds each connection's open-cursor table (default 4).
	// Every cursor pins an MVCC snapshot and leases a worker slot for its
	// lifetime, so the bound is deliberately small; OpScanOpen beyond it is
	// CodeBadRequest.
	MaxCursors int
	// WriteTimeout bounds each response write (default 10s).
	WriteTimeout time.Duration
	// DrainTimeout bounds Close()'s wait for in-flight requests
	// (default 5s).
	DrainTimeout time.Duration
	// Stats, when set, supplies the body of OpStats responses (engine
	// counters, obs snapshots); the server appends its own obs snapshot.
	Stats func() string
	// Obs is the metrics registry (nil = no recording).
	Obs *obs.Registry
	// Tracer, when set, attributes request time to pipeline stages
	// (internal/obs): client-flagged requests are always traced; otherwise
	// the tracer's sampling and slow-threshold policy applies. nil = off,
	// zero overhead.
	Tracer *obs.Tracer
	// Chaos is the fault-injection engine shared with the deployment
	// (nil = inert).
	Chaos *chaos.Engine
	// Replica, when set, marks this server a read-only replica: the
	// greeting advertises the replica role and the primary's address,
	// OpExecAt honors the read-your-writes token against the replica's
	// applied-CSN watermark, and writes fail with CodeReadOnly.
	Replica *ReplicaConfig
	// ReplSource, when set, serves the log-shipping opcodes (OpReplHello/
	// OpReplList/OpReplFetch) so replica processes can mirror this server's
	// PLogs. Set it on primaries.
	ReplSource ReplicationSource
	// Epoch reports the node's current primary epoch, stamped into the
	// greeting and every repl response (nil = 0: no epoch claim, the
	// pre-epoch protocol).
	Epoch func() uint64
	// ObserveEpoch folds a primary epoch presented by a remote node
	// (repl hello/fetch requests) into the node's fencing state and
	// reports whether this node is now fenced -- demoted by a newer
	// lineage. A fenced node refuses repl fetches with CodeStaleEpoch
	// (writes already fail inside the engine). nil = never fenced.
	ObserveEpoch func(epoch uint64) bool
	// ShardInfo, when set, serves OpShardMap: the cluster's shard topology
	// for client self-bootstrap. A request asserting a shard id other than
	// the map's SelfID is answered CodeWrongShard -- the router's stale-map
	// detector. nil (or a nil map) = sharding not enabled.
	ShardInfo func() *wire.ShardMap
	// TwoPC, when set, serves the coordinator-facing 2PC opcodes
	// (OpTxnDecide/OpTxnStatus/OpTxnRecover). OpTxnPrepare needs only the
	// frontend (the session's open transaction prepares through it).
	TwoPC *TwoPCConfig
}

// TwoPCConfig wires the server's 2PC participant opcodes to the engine.
type TwoPCConfig struct {
	// Resolve delivers a coordinator decision for a prepared gtid; done
	// fires once the decision record is durable and applied. Required.
	Resolve func(gtid string, commit bool, done func(csn uint64, err error)) error
	// Status reports a gtid's outcome as a wire.Txn* state byte plus the
	// commit CSN (0 unless committed). Required.
	Status func(gtid string) (state byte, csn uint64)
	// InDoubt lists the gtids prepared here but still undecided. Required.
	InDoubt func() []string
	// Forget prunes a decided gtid's 2PC bookkeeping; done fires once the
	// forget record is durable. Required.
	Forget func(gtid string, done func(err error)) error
}

// ReplicaConfig wires a replica server to its follower state.
type ReplicaConfig struct {
	// PrimaryAddr is advertised in the greeting so clients connected only
	// to the replica can find the write endpoint.
	PrimaryAddr string
	// AppliedCSN reports the replica's durable watermark (for /statusz and
	// token fast-paths).
	AppliedCSN func() uint64
	// WaitCSN blocks until the watermark reaches csn or the timeout
	// expires, reporting whether it did. Required.
	WaitCSN func(csn uint64, timeout time.Duration) bool
	// TokenWait bounds how long OpExecAt waits for the read-your-writes
	// token before answering CodeBusy (default 1s), at which point the
	// client redirects the read to the primary.
	TokenWait time.Duration
}

// ReplicationSource exposes a primary's PLogs to shipping followers.
type ReplicationSource interface {
	// ReplHello identifies the primary: its manifest PLog and current CSN.
	ReplHello() (manifest srss.PLogID, csn uint64)
	// ReplList enumerates the primary's PLogs across both tiers.
	ReplList() []wire.PLogStat
	// ReplFetch reads up to maxBytes from one PLog at offset, returning
	// the PLog's current stat alongside the chunk.
	ReplFetch(id srss.PLogID, offset int64, maxBytes int) (wire.PLogStat, []byte, error)
}

func (c *Config) fill() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	if c.SlotWait <= 0 {
		c.SlotWait = 250 * time.Millisecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 256
	}
	if c.MaxCursors <= 0 {
		c.MaxCursors = 4
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Replica != nil && c.Replica.TokenWait <= 0 {
		c.Replica.TokenWait = time.Second
	}
}

// Server is one wire-protocol endpoint.
type Server struct {
	cfg Config

	ln       net.Listener
	slots    chan int      // worker-slot lease pool
	inflight chan struct{} // admission semaphore

	// admitMu orders request admission against drain start: handle()'s
	// draining check + reqWG.Add(1) happen under it, and Shutdown sets
	// draining under it before calling reqWG.Wait, so an Add can never
	// start concurrently with Wait at a zero counter (WaitGroup misuse) --
	// once draining is observable, no further request is admitted.
	admitMu sync.Mutex
	reqWG   sync.WaitGroup // admitted requests, until their response is written
	connWG  sync.WaitGroup // connection handler goroutines

	mu    sync.Mutex
	conns map[*conn]struct{}

	draining atomic.Bool
	closed   atomic.Bool

	// Serving role, swappable at runtime by Promote: a replica server
	// carries a ReplicaConfig and no replication source; a primary the
	// reverse. Initialized from cfg; atomic because every greeting and
	// repl request reads them off connection goroutines.
	replica atomic.Pointer[ReplicaConfig]
	replSrc atomic.Pointer[ReplicationSource]

	// cached metrics (nil-safe when cfg.Obs is nil)
	mConns        *obs.Gauge
	mConnsTotal   *obs.Counter
	mConnsReject  *obs.Counter
	mInflight     *obs.Gauge
	mBusy         *obs.Counter
	mProtoErrs    *obs.Counter
	mBytesIn      *obs.Counter
	mBytesOut     *obs.Counter
	mLatency      *obs.Histogram
	mCommitDur    *obs.Histogram
	mReqs         [wire.MaxOp + 1]*obs.Counter   // by opcode
	mOpLat        [wire.MaxOp + 1]*obs.Histogram // per-opcode latency ("server.op.<name>")
	mErrs         [16]*obs.Counter
	mSlotWaitBusy *obs.Counter
	mStmtsOpen    *obs.Gauge
	mCursorsOpen  *obs.Gauge
	mReadTimeouts *obs.Counter
	mIdleReaped   *obs.Counter
}

// New builds a server. It does not listen; call Serve or ListenAndServe.
func New(cfg Config) (*Server, error) {
	if cfg.Frontend == nil {
		return nil, errors.New("server: Config.Frontend is required")
	}
	if cfg.WorkerSlots <= 0 {
		return nil, errors.New("server: Config.WorkerSlots must be > 0")
	}
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		slots:    make(chan int, cfg.WorkerSlots),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    make(map[*conn]struct{}),
	}
	for i := 0; i < cfg.WorkerSlots; i++ {
		s.slots <- i
	}
	if cfg.Replica != nil {
		s.replica.Store(cfg.Replica)
	}
	if cfg.ReplSource != nil {
		src := cfg.ReplSource
		s.replSrc.Store(&src)
	}
	r := cfg.Obs
	s.mConns = r.Gauge("server.conns")
	s.mConnsTotal = r.Counter("server.conns_total")
	s.mConnsReject = r.Counter("server.conns_rejected")
	s.mInflight = r.Gauge("server.inflight")
	s.mBusy = r.Counter("server.busy_rejects")
	s.mProtoErrs = r.Counter("server.protocol_errors")
	s.mBytesIn = r.Counter("server.bytes_in")
	s.mBytesOut = r.Counter("server.bytes_out")
	s.mLatency = r.Histogram("server.request_latency_ns")
	s.mCommitDur = r.Histogram("server.commit_durable_ns")
	s.mSlotWaitBusy = r.Counter("server.slot_wait_busy")
	s.mStmtsOpen = r.Gauge("server.stmts_open")
	s.mCursorsOpen = r.Gauge("server.cursors_open")
	s.mReadTimeouts = r.Counter("server.read_timeouts")
	s.mIdleReaped = r.Counter("server.idle_reaped")
	if r != nil {
		for op := wire.OpPing; op <= wire.MaxOp; op++ {
			if op == wire.OpResponse {
				continue
			}
			s.mReqs[op] = r.Counter("server.requests." + op.String())
			// One histogram per opcode under the wire golden-table name:
			// its _count series is the request count, its buckets the
			// latency distribution.
			s.mOpLat[op] = r.Histogram("server.op." + op.String())
		}
		for c := wire.CodeConflict; c <= wire.MaxCode; c++ {
			s.mErrs[c] = r.Counter("server.errors." + c.String())
		}
	}
	return s, nil
}

// replicaCfg returns the current replica role config (nil on a primary).
func (s *Server) replicaCfg() *ReplicaConfig { return s.replica.Load() }

// replSource returns the current replication source (nil on a replica).
func (s *Server) replSource() ReplicationSource {
	if p := s.replSrc.Load(); p != nil {
		return *p
	}
	return nil
}

// epoch returns the node's current primary epoch (0 when unset).
func (s *Server) epoch() uint64 {
	if s.cfg.Epoch != nil {
		return s.cfg.Epoch()
	}
	return 0
}

// Promote flips the serving role to primary: the replica token config is
// dropped (new greetings advertise the primary role at the engine's
// current epoch; read-your-writes tokens are trivially satisfied by the
// promoted engine) and src, when non-nil, serves the log-shipping opcodes
// so this node's own followers can ship from it. Connections opened before
// the flip keep working -- their next write simply succeeds.
func (s *Server) Promote(src ReplicationSource) {
	s.replica.Store(nil)
	if src != nil {
		s.replSrc.Store(&src)
	}
}

// Draining reports whether the server has begun a graceful shutdown and
// is refusing new requests (readiness probes should fail the node).
func (s *Server) Draining() bool { return s.draining.Load() }

// CursorsOpen returns the number of currently open streaming cursors.
func (s *Server) CursorsOpen() int64 { return s.mCursorsOpen.Load() }

// ListenAndServe listens on addr and serves until Shutdown/Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until the server shuts down. It returns
// nil after a graceful shutdown, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.closed.Load() { // Shutdown raced Serve: don't accept
		ln.Close()
		return nil
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closed.Load() || s.draining.Load() {
				return nil
			}
			return err
		}
		s.mConnsTotal.Inc()
		if err := s.cfg.Chaos.Check(SiteAccept); err != nil {
			// Injected accept rejection (or a latched crash): the
			// connection dies before the handshake; the process lives.
			s.mConnsReject.Inc()
			nc.Close()
			continue
		}
		if !s.admitConn(nc) {
			continue
		}
	}
}

// admitConn registers nc and starts its handler, or refuses it with a
// greeting frame carrying the refusal code.
func (s *Server) admitConn(nc net.Conn) bool {
	refuse := wire.Code(0)
	s.mu.Lock()
	switch {
	case s.draining.Load():
		refuse = wire.CodeClosed
	case len(s.conns) >= s.cfg.MaxConns:
		refuse = wire.CodeBusy
	}
	var c *conn
	if refuse == 0 {
		c = &conn{s: s, nc: nc, br: bufio.NewReader(nc), sess: s.cfg.Frontend.NewSession(0)}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
	}
	s.mu.Unlock()
	if refuse != 0 {
		// Greeting rejection: a response frame with RequestID 0, which
		// matches no request; clients treat it as a connection-level
		// error with the carried code.
		if refuse == wire.CodeBusy {
			s.mBusy.Inc()
		}
		s.mConnsReject.Inc()
		nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		wire.WriteFrame(nc, wire.Frame{Op: wire.OpResponse,
			Payload: wire.EncodeResponse(refuse, "connection refused", nil)})
		nc.Close()
		return false
	}
	s.mConns.Add(1)
	go c.serve()
	return true
}

// Shutdown gracefully drains the server: the listener closes, refused
// requests carry CodeClosed, and all admitted requests -- including
// commits waiting for durability -- complete before connections close.
// Returns ctx.Err() if the drain deadline expired first.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.admitMu.Lock() // see admitMu: no reqWG.Add once draining is set
	s.draining.Store(true)
	s.admitMu.Unlock()
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// Close shuts down with the configured drain timeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// --- connection handling ---------------------------------------------------

// conn is one client connection and its server-side session.
type conn struct {
	s    *Server
	nc   net.Conn
	br   *bufio.Reader
	sess *sqlfront.Session

	// stmts is the connection's prepared-statement table: ids issued by
	// OpPrepare, scoped to (and dying with) the connection. Bounded by
	// Config.MaxStmts.
	stmts   map[uint64]*stmtEntry
	stmtSeq uint64

	// cursors is the connection's open-cursor table: ids issued by
	// OpScanOpen, scoped to (and dying with) the connection. Bounded by
	// Config.MaxCursors; each entry leases its own worker slot.
	cursors map[uint64]*cursorEntry
	curSeq  uint64

	// worker-slot lease: held for the lifetime of a transaction
	// (explicit or autocommit); the engine frees its own slot earlier on
	// pipelined commits, but the lease is the server-side bound.
	slot    int
	hasSlot bool

	writeMu sync.Mutex
	dead    bool // write side failed; further responses are dropped

	// tr is the active request trace. It spans a whole transaction
	// (BEGIN..COMMIT arrive as separate frames) and completes with the
	// terminal response: the commit durability callback, or any response
	// after which no transaction remains open. Owned by the read-loop
	// goroutine, except that commit() hands it to the WAL I/O goroutine
	// (via the engine's commit pipeline) for the callback to complete.
	tr *obs.Trace
}

// stmtEntry is one server-side prepared statement. commit marks a
// prepared COMMIT so its executions route through the pipelined commit
// path exactly like the textual and OpCommit forms.
type stmtEntry struct {
	stmt   *sqlfront.Stmt
	commit bool
}

// isCommitText reports whether sql is the statement COMMIT (any case,
// optional trailing semicolon).
func isCommitText(sql string) bool {
	return strings.ToUpper(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))) == "COMMIT"
}

// isTimeout reports whether a read failed by deadline rather than by
// peer close or garbage.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// serve is the per-connection read loop. Requests execute serially (the
// session is stateful); responses may be written out of order by commit
// durability callbacks.
//
// Read deadlines bound a peer's silence: waiting between frames is
// budgeted IdleTimeout (ReadTimeout while a transaction is open, since an
// open transaction pins a leased worker slot), and once a frame's first
// bytes arrive its remainder must land within ReadTimeout -- a peer
// trickling a frame byte-by-byte (slowloris) cannot hold the connection
// open past it. A deadline failure kills only this connection; teardown
// releases the worker slot and the MaxConns seat.
func (c *conn) serve() {
	defer c.teardown()
	c.greet()
	fr := wire.NewFrameReader(c.br, true)
	inFrame := false
	var frameT0 time.Time
	fr.OnFrameStart = func() {
		inFrame = true
		frameT0 = time.Now()
		c.nc.SetReadDeadline(frameT0.Add(c.s.cfg.ReadTimeout))
		// A continuing trace attributes the frame's bytes-on-the-wire time
		// (first byte to full frame), not the idle wait before it.
		c.tr.Begin(obs.StageFrameRead)
	}
	for {
		inFrame = false
		wait := c.s.cfg.IdleTimeout
		if c.sess.InTxn() || len(c.cursors) > 0 {
			// An open transaction or cursor pins a leased worker slot (and,
			// for a cursor, an MVCC snapshot): the peer must keep talking
			// under the tighter budget or lose the connection.
			wait = c.s.cfg.ReadTimeout
		}
		c.nc.SetReadDeadline(time.Now().Add(wait))
		f, err := fr.Read()
		if err != nil {
			switch {
			case isTimeout(err):
				if inFrame || c.sess.InTxn() {
					c.s.mReadTimeouts.Inc()
					c.respond(0, wire.CodeClosed, "read timeout", nil)
				} else {
					c.s.mIdleReaped.Inc()
					c.respond(0, wire.CodeClosed, "connection idle timeout", nil)
				}
			case errors.Is(err, wire.ErrProtocol):
				// Torn/oversize/garbage frame: fail the connection with
				// a best-effort protocol-violation notice.
				c.s.mProtoErrs.Inc()
				c.respond(0, wire.CodeBadRequest, err.Error(), nil)
			}
			return
		}
		if err := c.s.cfg.Chaos.Check(SiteRead); err != nil {
			return // injected read failure: the connection is gone
		}
		if c.tr != nil {
			c.tr.End(obs.StageFrameRead)
		} else if tc := c.s.cfg.Tracer; tc != nil {
			// First frame of a traced unit: the trace starts only once the
			// frame (and with it any client trace id) has been read, so the
			// read time is back-dated as a span at offset zero.
			if tr := tc.Start(f.TraceID, f.Traced); tr != nil {
				c.tr = tr
				c.sess.SetTrace(tr)
				tr.AddSpan(obs.StageFrameRead, 0, int64(time.Since(frameT0)))
				// Tag the trace with its distributed identity: the hop id
				// the coordinator stamped on the frame, and this node's
				// shard id, so the stitched tree can place the timings.
				tr.SetHop(f.Hop)
				if si := c.s.cfg.ShardInfo; si != nil {
					if sm := si(); sm != nil {
						tr.SetShard(sm.SelfID)
					}
				}
			}
		}
		// The terminal opcode of the traced unit names the whole trace
		// (the last tag before Finish wins).
		c.tr.SetOp(f.Op.String())
		c.s.mBytesIn.Add(int64(len(f.Payload)) + 13)
		if !c.handle(f) {
			return
		}
	}
}

// greet sends the server greeting: an unsolicited RequestID-0 CodeOK
// response carrying the server's role (primary or replica) and, on a
// replica, the primary's address. Clients that predate the greeting ignore
// unknown-ID OK frames, so it is backward-compatible.
func (c *conn) greet() {
	role, primary := wire.RolePrimary, ""
	if rc := c.s.replicaCfg(); rc != nil {
		role, primary = wire.RoleReplica, rc.PrimaryAddr
	}
	c.respond(0, wire.CodeOK, "", wire.EncodeGreeting(role, primary, c.s.epoch()))
}

// teardown runs when the read loop exits: the open transaction (if any)
// aborts, the worker-slot lease releases, and the connection unregisters.
// Pending commit-durability callbacks may still fire afterwards; respond
// tolerates the dead connection.
func (c *conn) teardown() {
	if c.tr != nil {
		// The traced unit never reached a terminal response (connection
		// died mid-transaction): drop it without publishing.
		c.tr.Discard()
		c.tr = nil
	}
	if c.sess.InTxn() {
		c.sess.Rollback()
	}
	c.releaseSlot()
	c.closeAllCursors()
	if n := len(c.stmts); n > 0 {
		c.s.mStmtsOpen.Add(-int64(n))
		c.stmts = nil
	}
	c.nc.Close()
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
	c.s.mConns.Add(-1)
	c.s.connWG.Done()
}

// acquireSlot leases a worker slot for a new transaction, waiting at most
// SlotWait. The lease is already held when a transaction is open.
func (c *conn) acquireSlot() error {
	if c.hasSlot {
		return nil
	}
	s, err := c.s.leaseSlot(c.tr)
	if err != nil {
		return err
	}
	c.slot, c.hasSlot = s, true
	c.sess.SetWorker(s)
	return nil
}

// releaseSlot returns the lease unless a transaction still holds it.
func (c *conn) releaseSlot() {
	if c.hasSlot && !c.sess.InTxn() {
		c.s.slots <- c.slot
		c.hasSlot = false
	}
}

// handle executes one request. Returns false when the connection must
// close. The in-flight token and reqWG entry taken at admission are
// released exactly once, after the response is written (possibly from a
// durability callback).
func (c *conn) handle(f wire.Frame) bool {
	if c.s.mReqs[f.Op] != nil {
		c.s.mReqs[f.Op].Inc()
	}
	c.s.admitMu.Lock()
	if c.s.draining.Load() {
		c.s.admitMu.Unlock()
		c.respondTr(f.RequestID, c.takeTerminalTrace(), wire.CodeClosed, "server draining", nil)
		return true
	}
	select {
	case c.s.inflight <- struct{}{}:
	default:
		c.s.admitMu.Unlock()
		c.s.mBusy.Inc()
		c.respondTr(f.RequestID, c.takeTerminalTrace(), wire.CodeBusy, "server at max in-flight requests", nil)
		return true
	}
	c.s.reqWG.Add(1)
	c.s.admitMu.Unlock()
	c.s.mInflight.Add(1)
	start := time.Now()
	opLat := c.s.mOpLat[f.Op]
	release := func() {
		<-c.s.inflight
		c.s.mInflight.Add(-1)
		c.s.reqWG.Done()
		ns := time.Since(start).Nanoseconds()
		c.s.mLatency.Record(ns)
		opLat.Record(ns)
	}

	finish := func(err error, body []byte) {
		// A response after which no transaction remains open terminates the
		// traced unit: complete and publish the trace with this response.
		tr := c.takeTerminalTrace()
		if err != nil {
			c.respondTrErr(f.RequestID, tr, err)
		} else {
			c.respondTr(f.RequestID, tr, wire.CodeOK, "", body)
		}
		release()
	}

	switch f.Op {
	case wire.OpPing:
		finish(nil, nil)

	case wire.OpStats:
		var b strings.Builder
		if c.s.cfg.Stats != nil {
			b.WriteString(c.s.cfg.Stats())
		}
		pcs := c.s.cfg.Frontend.PlanCacheStats()
		fmt.Fprintf(&b, "plancache size=%d hits=%d misses=%d evictions=%d invalidations=%d\n",
			pcs.Size, pcs.Hits, pcs.Misses, pcs.Evictions, pcs.Invalidations)
		if c.s.cfg.Obs != nil {
			b.WriteString(c.s.cfg.Obs.Snapshot().String())
		}
		finish(nil, []byte(b.String()))

	case wire.OpBegin:
		if err := c.acquireSlot(); err != nil {
			finish(err, nil)
			return true
		}
		err := c.sess.Begin()
		c.releaseSlot() // only on error: Begin leaves InTxn true on success
		finish(err, nil)

	case wire.OpAbort:
		err := c.sess.Rollback()
		c.releaseSlot()
		finish(err, nil)

	case wire.OpCommit:
		c.commit(f.RequestID, release)

	case wire.OpExec:
		sql, args, err := wire.DecodeExec(f.Payload)
		if err != nil {
			// Corrupt payload is a protocol violation: answer, then fail
			// the connection.
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		c.execSQL(f.RequestID, sql, args, finish, release)

	case wire.OpExecAt:
		minCSN, sql, args, err := wire.DecodeExecAt(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		// The read-your-writes token: on a replica, wait (bounded) until
		// the applied watermark covers the client's last commit; a primary
		// trivially satisfies any token it issued. A timeout is CodeBusy:
		// the client redirects the read to the primary rather than see a
		// stale snapshot.
		if rc := c.s.replicaCfg(); rc != nil && minCSN > 0 {
			if !rc.WaitCSN(minCSN, rc.TokenWait) {
				finish(fmt.Errorf("replica behind read-your-writes token %d: %w",
					minCSN, ErrServerBusy), nil)
				return true
			}
		}
		c.execSQL(f.RequestID, sql, args, finish, release)

	case wire.OpReplHello, wire.OpReplList, wire.OpReplFetch:
		src := c.s.replSource()
		if src == nil {
			finish(fmt.Errorf("%w: replication source not enabled", wire.ErrBadStatement), nil)
			return true
		}
		switch f.Op {
		case wire.OpReplHello:
			// The hello carries the caller's observed epoch; folding it in
			// is how a promoted node's fencer demotes this one. A fenced
			// node still answers hello (with its stale epoch) -- refusing
			// would hide the very state the caller is probing -- but it
			// must not serve its log (fetch below).
			remote, err := wire.DecodeReplHelloReq(f.Payload)
			if err != nil {
				c.s.mProtoErrs.Inc()
				finish(err, nil)
				return false
			}
			if c.s.cfg.ObserveEpoch != nil {
				c.s.cfg.ObserveEpoch(remote)
			}
			manifest, csn := src.ReplHello()
			finish(nil, wire.EncodeReplHello(manifest, csn, c.s.epoch()))
		case wire.OpReplList:
			finish(nil, wire.EncodeReplList(src.ReplList()))
		default:
			id, off, maxBytes, remote, err := wire.DecodeReplFetch(f.Payload)
			if err != nil {
				c.s.mProtoErrs.Inc()
				finish(err, nil)
				return false
			}
			// A node fenced by a newer lineage must not serve its log: a
			// follower replaying it would diverge from the promoted
			// history. The typed refusal is the follower's cue to
			// rediscover the primary.
			if c.s.cfg.ObserveEpoch != nil && c.s.cfg.ObserveEpoch(remote) {
				finish(fmt.Errorf("fenced at epoch %d: %w", c.s.epoch(), core.ErrStaleEpoch), nil)
				return true
			}
			st, data, err := src.ReplFetch(id, off, maxBytes)
			if err != nil {
				finish(err, nil)
				return true
			}
			finish(nil, wire.EncodeReplChunk(st, data))
		}

	case wire.OpShardMap:
		expect, id, err := wire.DecodeShardMapReq(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		var m *wire.ShardMap
		if c.s.cfg.ShardInfo != nil {
			m = c.s.cfg.ShardInfo()
		}
		if m == nil {
			finish(fmt.Errorf("%w: sharding not enabled", wire.ErrBadStatement), nil)
			return true
		}
		// The router's stale-map detector: a request asserting the wrong
		// shard id gets the typed refusal (plus the current map in the
		// message-free body) instead of silently serving foreign keys.
		if expect && id != m.SelfID {
			finish(fmt.Errorf("node serves shard %d, not %d: %w", m.SelfID, id, wire.ErrWrongShard), nil)
			return true
		}
		finish(nil, wire.EncodeShardMap(m))

	case wire.OpTxnPrepare:
		gtid, err := wire.DecodeTxnPrepare(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		c.prepare2pc(f.RequestID, gtid, release)

	case wire.OpTxnDecide:
		gtid, commit, err := wire.DecodeTxnDecide(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		tp := c.s.cfg.TwoPC
		if tp == nil {
			finish(fmt.Errorf("%w: two-phase commit not enabled", wire.ErrBadStatement), nil)
			return true
		}
		// Like commit, the decision answers at durability: the response
		// (and the admission token) defers to the decision record's
		// durability callback while the read loop moves on.
		tr := c.takeTerminalTrace()
		if rerr := tp.Resolve(gtid, commit, func(csn uint64, derr error) {
			switch {
			case derr != nil:
				c.respondTrErr(f.RequestID, tr, derr)
			case c.ackLost(tr):
			default:
				c.respondTr(f.RequestID, tr, wire.CodeOK, "", wire.EncodeTxnCSN(csn))
			}
			release()
		}); rerr != nil {
			c.respondTrErr(f.RequestID, tr, rerr)
			release()
		}

	case wire.OpTxnStatus:
		gtid, err := wire.DecodeTxnStatus(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		tp := c.s.cfg.TwoPC
		if tp == nil {
			finish(fmt.Errorf("%w: two-phase commit not enabled", wire.ErrBadStatement), nil)
			return true
		}
		st, csn := tp.Status(gtid)
		finish(nil, wire.EncodeTxnState(st, csn))

	case wire.OpTxnRecover:
		tp := c.s.cfg.TwoPC
		if tp == nil {
			finish(fmt.Errorf("%w: two-phase commit not enabled", wire.ErrBadStatement), nil)
			return true
		}
		finish(nil, wire.EncodeGTIDList(tp.InDoubt()))

	case wire.OpTxnForget:
		gtid, err := wire.DecodeTxnForget(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		tp := c.s.cfg.TwoPC
		if tp == nil {
			finish(fmt.Errorf("%w: two-phase commit not enabled", wire.ErrBadStatement), nil)
			return true
		}
		// Like the decision, the forget answers at durability of its record.
		tr := c.takeTerminalTrace()
		if rerr := tp.Forget(gtid, func(ferr error) {
			switch {
			case ferr != nil:
				c.respondTrErr(f.RequestID, tr, ferr)
			case c.ackLost(tr):
			default:
				c.respondTr(f.RequestID, tr, wire.CodeOK, "", nil)
			}
			release()
		}); rerr != nil {
			c.respondTrErr(f.RequestID, tr, rerr)
			release()
		}

	case wire.OpPrepare:
		sql, err := wire.DecodePrepare(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		if len(c.stmts) >= c.s.cfg.MaxStmts {
			finish(fmt.Errorf("%w: statement table full (%d open)", wire.ErrBadStatement, len(c.stmts)), nil)
			return true
		}
		// Prepare only touches the catalog (parse/plan/compile through the
		// frontend plan cache) -- no engine transaction, so no worker slot.
		st, err := c.sess.Prepare(sql)
		if err != nil {
			finish(fmt.Errorf("%w: %v", wire.ErrBadStatement, err), nil)
			return true
		}
		if c.stmts == nil {
			c.stmts = make(map[uint64]*stmtEntry)
		}
		c.stmtSeq++
		id := c.stmtSeq
		c.stmts[id] = &stmtEntry{stmt: st, commit: isCommitText(sql)}
		c.s.mStmtsOpen.Add(1)
		finish(nil, wire.EncodePrepareResult(id, st.NumParams()))

	case wire.OpExecStmt:
		id, args, err := wire.DecodeExecStmt(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		e := c.stmts[id]
		if e == nil {
			finish(fmt.Errorf("%w: unknown statement id %d", wire.ErrBadStatement, id), nil)
			return true
		}
		// A prepared COMMIT pipelines exactly like the textual form.
		if e.commit {
			c.commit(f.RequestID, release)
			return true
		}
		if err := c.acquireSlot(); err != nil {
			finish(err, nil)
			return true
		}
		res, err := e.stmt.Exec(args...)
		c.releaseSlot()
		if err != nil {
			finish(err, nil)
			return true
		}
		c.finishResult(finish, res)

	case wire.OpCloseStmt:
		id, err := wire.DecodeCloseStmt(f.Payload)
		if err != nil {
			c.s.mProtoErrs.Inc()
			finish(err, nil)
			return false
		}
		// Idempotent: closing an unknown or already-closed id succeeds, so
		// pooled clients can close defensively on connection reuse.
		if _, ok := c.stmts[id]; ok {
			delete(c.stmts, id)
			c.s.mStmtsOpen.Add(-1)
		}
		finish(nil, nil)

	case wire.OpScanOpen:
		return c.scanOpen(f.RequestID, f.Payload, finish)

	case wire.OpScanNext:
		return c.scanNext(f.RequestID, f.Payload, finish)

	case wire.OpScanClose:
		return c.scanClose(f.Payload, finish)

	case wire.OpExecBatch:
		return c.execBatch(f.RequestID, f.Payload, finish, release)

	default:
		// ReadFrame validated the opcode; unreachable.
		finish(fmt.Errorf("%w: opcode %d", wire.ErrProtocol, f.Op), nil)
		return false
	}
	return true
}

// execSQL runs one SQL statement: the shared body of OpExec and OpExecAt.
// SQL COMMIT goes through the pipelined path so every commit, however
// expressed, batches into the group append.
func (c *conn) execSQL(reqID uint64, sql string, args []core.Value, finish func(error, []byte), release func()) {
	if isCommitText(sql) {
		c.commit(reqID, release)
		return
	}
	if err := c.acquireSlot(); err != nil {
		finish(err, nil)
		return
	}
	stmt, err := c.sess.Prepare(sql)
	if err != nil {
		// Parse/plan/arity failures are bad requests, distinct from
		// engine-side execution failures.
		c.releaseSlot()
		finish(fmt.Errorf("%w: %v", wire.ErrBadStatement, err), nil)
		return
	}
	res, err := stmt.Exec(args...)
	c.releaseSlot()
	if err != nil {
		finish(err, nil)
		return
	}
	c.finishResult(finish, res)
}

// finishResult responds CodeOK with res encoded into a pooled body buffer,
// suffixed with the session's read-your-writes token; the buffer returns to
// the pool once the response frame is written (finish responds
// synchronously, so the body is dead by then).
func (c *conn) finishResult(finish func(error, []byte), res *sqlfront.Result) {
	bp := wire.GetBuf()
	body := wire.AppendResultCSN((*bp)[:0], &wire.Result{
		Columns: res.Columns, Rows: res.Rows, Affected: res.Affected,
	}, c.sess.LastCSN())
	finish(nil, body)
	*bp = body
	wire.PutBuf(bp)
}

// commit runs the session commit through the pipelined path: on an async
// commit the response (and the admission token) is deferred to the
// durability callback while the read loop moves on -- the out-of-order
// case of the protocol. The response body is an empty Result suffixed with
// the session's post-commit CSN -- the read-your-writes token the client
// presents to replicas -- for both the SQL COMMIT and OpCommit forms
// (clients decode any commit body as a Result, so the shape must not
// depend on the form).
func (c *conn) commit(reqID uint64, release func()) {
	start := time.Now()
	var emptyRes wire.Result
	respondOK := func(tr *obs.Trace) {
		// Built per response from a pooled buffer: the CSN is only known
		// once the commit has run, and respondTr consumes the body
		// synchronously.
		bp := wire.GetBuf()
		body := wire.AppendResultCSN((*bp)[:0], &emptyRes, c.sess.LastCSN())
		c.respondTr(reqID, tr, wire.CodeOK, "", body)
		*bp = body
		wire.PutBuf(bp)
	}
	// The commit response terminates the traced unit. Detach the trace from
	// the connection before CommitAsync: on the async path the engine's
	// commit pipeline carries it to the WAL I/O goroutine (the channel send
	// transfers ownership), and the durability callback -- which runs there
	// -- completes it. The read loop must not touch it afterwards.
	tr := c.tr
	c.tr = nil
	async, err := c.sess.CommitAsync(func(cerr error) {
		c.s.mCommitDur.Record(time.Since(start).Nanoseconds())
		if cerr != nil {
			c.respondTrErr(reqID, tr, cerr)
		} else {
			respondOK(tr)
		}
		release()
	})
	// CommitAsync has detached the session's transaction, so this only
	// clears the session-level pointer (the read-loop goroutine owns the
	// session; the trace itself is not touched).
	c.sess.SetTrace(nil)
	c.releaseSlot()
	if async {
		return
	}
	if err != nil {
		c.respondTrErr(reqID, tr, err)
	} else {
		respondOK(tr)
	}
	release()
}

// prepare2pc runs phase one of 2PC on the session's open transaction
// (OpTxnPrepare). Like commit, the response answers at durability: the vote
// byte distinguishes a prepared write set (the coordinator owes a decision)
// from a read-only local commit, and an error response is a "no" vote (the
// transaction is already aborted). The session detaches from the
// transaction either way -- the prepared participant belongs to the
// engine's decision path, so the worker-slot lease returns immediately.
func (c *conn) prepare2pc(reqID uint64, gtid string, release func()) {
	start := time.Now()
	tr := c.tr
	c.tr = nil
	err := c.sess.PrepareTxn(gtid, func(readOnly bool, perr error) {
		c.s.mCommitDur.Record(time.Since(start).Nanoseconds())
		switch {
		case perr != nil:
			c.respondTrErr(reqID, tr, perr)
		case c.ackLost(tr):
		default:
			vote := wire.PreparedWrites
			if readOnly {
				vote = wire.PreparedReadOnly
			}
			c.respondTr(reqID, tr, wire.CodeOK, "", []byte{vote})
		}
		release()
	})
	c.sess.SetTrace(nil)
	c.releaseSlot()
	if err != nil {
		// Immediate "no" vote; PrepareTxn never invokes the callback after
		// a non-nil return.
		c.respondTrErr(reqID, tr, err)
		release()
	}
}

// ackLost checks the 2PC ack-loss chaos site: on an injected error the
// connection dies without a response -- the participant's durable state
// outlives the coordinator's knowledge of it, which is the in-doubt window
// the recovery protocol exists for. Reports whether the ack was dropped.
func (c *conn) ackLost(tr *obs.Trace) bool {
	if err := c.s.cfg.Chaos.Check(Site2PCAck); err == nil {
		return false
	}
	c.writeMu.Lock()
	c.dead = true
	c.nc.Close()
	c.writeMu.Unlock()
	if tr != nil {
		tr.Discard()
	}
	return true
}

// takeTerminalTrace detaches and returns the active trace if the response
// about to be written terminates the traced unit (no transaction remains
// open to extend it); otherwise it returns nil and the trace stays attached
// for the transaction's later frames.
func (c *conn) takeTerminalTrace() *obs.Trace {
	tr := c.tr
	if tr == nil || c.sess.InTxn() {
		return nil
	}
	c.tr = nil
	c.sess.SetTrace(nil)
	return tr
}

// respondErr classifies err onto its stable wire code and responds.
func (c *conn) respondErr(reqID uint64, err error) {
	c.respondTrErr(reqID, nil, err)
}

// respondTrErr classifies err onto its stable wire code and responds,
// completing tr (if any) with the response.
func (c *conn) respondTrErr(reqID uint64, tr *obs.Trace, err error) {
	code := wire.Classify(err)
	if c.s.mErrs[code] != nil {
		c.s.mErrs[code].Inc()
	}
	c.respondTr(reqID, tr, code, err.Error(), nil)
}

// respond writes one response frame. Any goroutine may call it (the read
// loop or a durability callback); writeMu serializes frame writes so
// out-of-order responses interleave at frame granularity, never byte
// granularity. Write failures (or an injected mid-response drop) kill the
// connection's write side; later responses are dropped silently.
func (c *conn) respond(reqID uint64, code wire.Code, msg string, body []byte) {
	c.respondTr(reqID, nil, code, msg, body)
}

// respondTr writes one response frame and, when tr is non-nil, completes
// the trace: the frame carries the stage-timing block, the write itself is
// recorded as the respond stage, and the trace finishes (publishing per its
// sampling/slow policy) after the write. The caller must have detached tr
// from the connection; respondTr consumes it.
func (c *conn) respondTr(reqID uint64, tr *obs.Trace, code wire.Code, msg string, body []byte) {
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	var buf []byte
	if tr != nil {
		tr.End(obs.StageDurable)
		tr.Begin(obs.StageRespond)
		buf = wire.AppendTracedResponseFrame((*bp)[:0], reqID, tr.ID(), tr, code, msg, body)
	} else {
		buf = wire.AppendResponseFrame((*bp)[:0], reqID, code, msg, body)
	}
	if payload := len(buf) - 13; payload > wire.MaxPayload {
		// An oversize response (e.g. a huge scan result) must never reach
		// the wire: the client's ReadFrame would reject the frame as a
		// protocol violation and kill the connection, failing every
		// pipelined request on it. Substitute a clean per-request error.
		if c.s.mErrs[wire.CodeBadRequest] != nil {
			c.s.mErrs[wire.CodeBadRequest].Inc()
		}
		buf = wire.AppendResponseFrame(buf[:0], reqID, wire.CodeBadRequest,
			fmt.Sprintf("result too large: %d bytes exceeds frame limit %d", payload, wire.MaxFrame), nil)
	}
	*bp = buf
	c.writeMu.Lock()
	c.write(buf)
	c.writeMu.Unlock()
	if tr != nil {
		tr.End(obs.StageRespond)
		tr.Finish()
	}
}

// write sends one framed response; the caller holds writeMu.
func (c *conn) write(buf []byte) {
	if c.dead {
		return
	}
	if err := c.s.cfg.Chaos.Check(SiteWrite); err != nil {
		if errors.Is(err, chaos.ErrInjected) {
			// Mid-response connection drop: the client sees a torn frame.
			c.nc.Write(buf[:len(buf)/2])
		}
		c.dead = true
		c.nc.Close()
		return
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
	if _, err := c.nc.Write(buf); err != nil {
		c.dead = true
		c.nc.Close()
		return
	}
	c.s.mBytesOut.Add(int64(len(buf)))
}
