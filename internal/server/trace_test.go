package server

import (
	"testing"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/obs"
	"hiengine/internal/wal"
	"hiengine/internal/wire"
)

// traceHarness builds a deployment whose server traces requests with cfg.
func traceHarness(t *testing.T, model *delay.Model, tcfg obs.TracerConfig, eng *chaos.Engine) (*harness, *obs.Tracer) {
	t.Helper()
	var tracer *obs.Tracer
	h := newHarnessModel(t, model, func(cfg *Config) {
		tcfg.Registry = cfg.Obs
		tracer = obs.NewTracer(tcfg)
		cfg.Tracer = tracer
	}, eng)
	return h, tracer
}

// TestRemoteTracedTransactionStages is the tracing acceptance path: one
// remote BEGIN..INSERT..COMMIT transaction, traced end to end, must come
// back with a stage breakdown spanning every layer of the commit pipeline
// -- server (frame read, respond), sqlfront (plan cache, exec), wal
// (enqueue, group commit, durable) and srss (replication) -- with
// monotonically ordered stage start times and nonzero durations.
func TestRemoteTracedTransactionStages(t *testing.T) {
	h, tracer := traceHarness(t, delay.CloudProfile(), obs.TracerConfig{SampleEvery: 1}, nil)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Trace(true)

	if _, err := s.Exec("CREATE TABLE kv (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kv VALUES (?, ?)", core.I(1), core.S("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	lt := s.LastTrace()
	if lt == nil {
		t.Fatal("no trace returned for traced transaction")
	}
	info := lt.Info
	if info.TotalNS <= 0 {
		t.Fatalf("trace total = %d, want > 0", info.TotalNS)
	}
	if lt.ClientNS < info.TotalNS {
		t.Fatalf("client wall time %d < server total %d", lt.ClientNS, info.TotalNS)
	}

	// The server publishes the completed record to the recent ring; there
	// the respond stage has its final duration (the stage-timing block on
	// the wire is necessarily encoded before the response write finishes,
	// so the client's view reports respond as in-progress).
	var rec *obs.TraceRecord
	for _, r := range tracer.Recent() {
		if r.ID == info.TraceID {
			rec = r
		}
	}
	if rec == nil {
		t.Fatalf("trace %d not in recent ring", info.TraceID)
	}

	// The pipeline stages every committed transaction must traverse, at
	// least one from each instrumented layer.
	required := []obs.Stage{
		obs.StagePlanCache, obs.StageExec, // sqlfront
		obs.StageWALEnqueue, obs.StageGroupCommit, obs.StageDurable, // wal
		obs.StageSRSSReplicate, // srss
		obs.StageRespond,       // server
	}
	seen := make(map[obs.Stage]int64, len(rec.Stages))
	distinct := 0
	for _, st := range rec.Stages {
		if _, dup := seen[st.Stage]; dup {
			t.Fatalf("stage %v reported twice", st.Stage)
		}
		seen[st.Stage] = st.DurNS
		if st.DurNS > 0 {
			distinct++
		}
	}
	if distinct < 6 {
		t.Fatalf("want >= 6 distinct stages with nonzero durations, got %d: %+v", distinct, rec.Stages)
	}
	for _, want := range required {
		d, ok := seen[want]
		if !ok {
			t.Fatalf("stage %v missing from trace: %+v", want, rec.Stages)
		}
		if d <= 0 {
			t.Fatalf("stage %v duration = %d, want > 0", want, d)
		}
	}
	// Stage start offsets must be monotone in pipeline (enum) order: the
	// transaction flows forward through the pipeline.
	for i := 1; i < len(rec.Stages); i++ {
		prev, cur := rec.Stages[i-1], rec.Stages[i]
		if cur.BeginNS < prev.BeginNS {
			t.Fatalf("stage %v begins at %d, before prior stage %v at %d",
				cur.Stage, cur.BeginNS, prev.Stage, prev.BeginNS)
		}
		if cur.BeginNS > rec.TotalNS || cur.BeginNS+cur.DurNS > rec.TotalNS+int64(time.Millisecond) {
			t.Fatalf("stage %v [%d +%d] exceeds total %d", cur.Stage, cur.BeginNS, cur.DurNS, rec.TotalNS)
		}
	}
	if !rec.PlanHit && !rec.PlanMiss || !info.PlanHit && !info.PlanMiss {
		t.Fatalf("trace carries no plan-cache outcome: %+v", rec)
	}
	if rec.Batch < 1 || info.Batch < 1 {
		t.Fatalf("commit batch = %d/%d, want >= 1", rec.Batch, info.Batch)
	}
	// The client's wire-delivered view must agree with the ring on the
	// stage set (respond aside, durations there are snapshots in flight).
	if len(info.Stages) != len(rec.Stages) {
		t.Fatalf("client stage count %d != ring stage count %d", len(info.Stages), len(rec.Stages))
	}
	for i := range info.Stages {
		if info.Stages[i].Stage != rec.Stages[i].Stage {
			t.Fatalf("stage %d: client %v != ring %v", i, info.Stages[i].Stage, rec.Stages[i].Stage)
		}
	}
}

// TestTraceSlowCaptureUnderChaos asserts tail capture: with head sampling
// effectively off, a transaction slowed by an injected WAL-flush delay must
// still land in the slow-trace ring because it crossed the slow threshold.
func TestTraceSlowCaptureUnderChaos(t *testing.T) {
	eng := chaos.New(7)
	eng.Arm(chaos.Rule{Site: wal.SiteFlushBefore, Action: chaos.Delay, Delay: 20 * time.Millisecond, Prob: 1, Count: 1})
	h, tracer := traceHarness(t, delay.Zero(), obs.TracerConfig{
		SampleEvery:   1 << 30, // head sampling will never pick a request
		SlowThreshold: 5 * time.Millisecond,
	}, eng)
	cl := h.client(t, nil)

	// Note: no Session.Trace(true) -- nothing forces this trace; only the
	// slow threshold can publish it.
	if _, err := cl.Exec("CREATE TABLE slowkv (k INT, v TEXT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("INSERT INTO slowkv VALUES (?, ?)", core.I(1), core.S("delayed")); err != nil {
		t.Fatal(err)
	}

	slow := tracer.Slow()
	if len(slow) == 0 {
		t.Fatal("chaos-delayed transaction missing from slow ring")
	}
	rec := slow[len(slow)-1]
	if !rec.Slow || rec.Sampled || rec.Forced {
		t.Fatalf("slow capture flags = %+v, want slow-only", rec)
	}
	if rec.TotalNS < (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("slow trace total = %dns, below threshold", rec.TotalNS)
	}
	var groupCommit int64
	for _, st := range rec.Stages {
		if st.Stage == obs.StageGroupCommit {
			groupCommit = st.DurNS
		}
	}
	if groupCommit < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("injected 20ms flush delay not attributed to group commit: %+v", rec.Stages)
	}
}

// TestTraceUntracedSessionUnaffected asserts a tracer with sampling off and
// no slow threshold adds nothing to responses: the client sees no trace.
func TestTraceUntracedSessionUnaffected(t *testing.T) {
	h, tracer := traceHarness(t, delay.Zero(), obs.TracerConfig{}, nil)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE plain (k INT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if lt := s.LastTrace(); lt != nil {
		t.Fatalf("untraced session got trace %+v", lt.Info)
	}
	if got := len(tracer.Recent()); got != 0 {
		t.Fatalf("recent ring has %d records with sampling off", got)
	}

	// A client-forced trace still works against the same tracer.
	s.Trace(true)
	if _, err := s.Exec("INSERT INTO plain VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}
	lt := s.LastTrace()
	if lt == nil || !lt.Info.PlanMiss && !lt.Info.PlanHit {
		t.Fatalf("forced trace missing or empty: %+v", lt)
	}
	recent := tracer.Recent()
	if len(recent) != 1 || !recent[0].Forced {
		t.Fatalf("forced trace not in recent ring: %+v", recent)
	}
	if recent[0].ID != lt.Info.TraceID {
		t.Fatalf("trace id mismatch: ring %d, client %d", recent[0].ID, lt.Info.TraceID)
	}
}

// TestStreamedScanTraceStages is the cursor-trace regression: a traced
// streaming SELECT must attribute the snapshot pin (cursor_open) and page
// production (cursor_produce) on the open unit, and later page fetches
// must carry cursor_produce without re-reporting cursor_open.
func TestStreamedScanTraceStages(t *testing.T) {
	h, tracer := traceHarness(t, delay.Zero(), obs.TracerConfig{SampleEvery: 1}, nil)
	cl := h.client(t, func(o *client.Options) { o.FetchSize = 16 })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE scantrace (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	const rows = 64
	stmts := make([]wire.BatchStmt, rows)
	for i := range stmts {
		stmts[i] = wire.BatchStmt{SQL: "INSERT INTO scantrace VALUES (?, 'v')",
			Args: []core.Value{core.I(int64(i))}}
	}
	if _, err := cl.ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}

	s.Trace(true)
	rs, err := s.Query("SELECT * FROM scantrace")
	if err != nil {
		t.Fatal(err)
	}
	lt := s.LastTrace()
	if lt == nil {
		t.Fatal("no trace returned for traced scan open")
	}
	stages := func(ti *wire.TraceInfo) map[obs.Stage]int64 {
		m := make(map[obs.Stage]int64, len(ti.Stages))
		for _, st := range ti.Stages {
			m[st.Stage] = st.DurNS
		}
		return m
	}
	open := stages(lt.Info)
	if d, ok := open[obs.StageCursorOpen]; !ok || d <= 0 {
		t.Fatalf("cursor_open stage missing or zero on scan open: %+v", lt.Info.Stages)
	}
	if d, ok := open[obs.StageCursorProduce]; !ok || d <= 0 {
		t.Fatalf("cursor_produce stage missing or zero on scan open: %+v", lt.Info.Stages)
	}

	n := 0
	for rs.Next() {
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("streamed %d rows, want %d", n, rows)
	}

	// With 64 rows at fetch size 16, the drain issued pure page fetches:
	// their units must report page production but never a second open.
	var nextSeen bool
	for _, rec := range tracer.Recent() {
		if rec.Op != wire.OpScanNext.String() {
			continue
		}
		nextSeen = true
		var produce, openDur int64
		for _, st := range rec.Stages {
			switch st.Stage {
			case obs.StageCursorProduce:
				produce = st.DurNS
			case obs.StageCursorOpen:
				openDur = st.DurNS
			}
		}
		if produce <= 0 {
			t.Fatalf("scan_next trace lacks cursor_produce: %+v", rec.Stages)
		}
		if openDur != 0 {
			t.Fatalf("scan_next trace re-reports cursor_open: %+v", rec.Stages)
		}
	}
	if !nextSeen {
		t.Fatal("no scan_next trace in the recent ring")
	}
}

// TestPerOpcodeMetrics asserts every served opcode lands in its own
// server.op.<name> histogram: the _count series is the request count and
// the samples are that opcode's latency.
func TestPerOpcodeMetrics(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, nil)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("CREATE TABLE opm (k INT, PRIMARY KEY(k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("INSERT INTO opm VALUES (?)", core.I(1)); err != nil {
		t.Fatal(err)
	}

	counts := make(map[string]int64)
	for _, m := range h.reg.Snapshot().Metrics {
		if m.Hist != nil {
			counts[m.Name] = m.Hist.Count
		}
	}
	if got := counts["server.op."+wire.OpPing.String()]; got < 1 {
		t.Fatalf("server.op.ping count = %d, want >= 1", got)
	}
	if got := counts["server.op."+wire.OpExec.String()]; got < 2 {
		t.Fatalf("server.op.exec count = %d, want >= 2 (create + insert)", got)
	}
	if got := counts["server.op."+wire.OpScanOpen.String()]; got != 0 {
		t.Fatalf("server.op.scan_open count = %d, want 0 (no scans ran)", got)
	}
}
