package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hiengine/internal/client"
	"hiengine/internal/core"
	"hiengine/internal/wire"
)

// TestStreamingOversizeScan is the acceptance path for the cursor
// protocol: a SELECT whose result is well beyond 8x wire.MaxPayload --
// which the one-shot path must keep rejecting -- streams to completion
// through client.Rows in bounded pages.
func TestStreamingOversizeScan(t *testing.T) {
	h := newHarness(t, nil, nil)
	// Encoding (and then refusing) the ~132 MiB one-shot result takes the
	// server well past the default request timeout under -race.
	cl := h.client(t, func(o *client.Options) { o.RequestTimeout = 2 * time.Minute })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE big (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// ~132 MiB of result: >= 8x the 16 MiB frame cap.
	const rows, width, batch = 33000, 4096, 500
	wide := strings.Repeat("x", width)
	for base := 0; base < rows; base += batch {
		stmts := make([]wire.BatchStmt, batch)
		for i := range stmts {
			stmts[i] = wire.BatchStmt{SQL: "INSERT INTO big VALUES (?, ?)",
				Args: []core.Value{core.I(int64(base + i)), core.S(wide)}}
		}
		aff, err := cl.ExecBatch(stmts)
		if err != nil {
			t.Fatalf("batch at %d: %v", base, err)
		}
		if len(aff) != batch {
			t.Fatalf("batch at %d: %d affected entries", base, len(aff))
		}
	}

	// The one-shot path still rejects the oversize result (last-resort
	// guard unchanged)...
	s, err = cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Exec("SELECT * FROM big")
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("one-shot oversize: want CodeBadRequest, got %v", err)
	}
	s.Close()

	// ...while the same statement streams to completion through Rows.
	rs, err := cl.Query("SELECT * FROM big")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var n int
	var sum int64
	for rs.Next() {
		row := rs.Row()
		sum += row[0].Int()
		if len(row[1].Str()) != width {
			t.Fatalf("row %d: value width %d", n, len(row[1].Str()))
		}
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("streamed %d rows, want %d", n, rows)
	}
	if want := int64(rows) * (rows - 1) / 2; sum != want {
		t.Fatalf("key sum %d, want %d (rows lost or duplicated)", sum, want)
	}
}

// TestStreamSnapshotUnderWriters: rows committed after the cursor opened
// -- inserts and updates alike -- must be invisible to the pinned
// snapshot, however slowly the client drains.
func TestStreamSnapshotUnderWriters(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) { o.FetchSize = 50 })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE snap (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	const before = 1000
	stmts := make([]wire.BatchStmt, before)
	for i := range stmts {
		stmts[i] = wire.BatchStmt{SQL: "INSERT INTO snap VALUES (?, 'old')",
			Args: []core.Value{core.I(int64(i))}}
	}
	if _, err := cl.ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}

	rs, err := cl.Query("SELECT * FROM snap")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	// With the cursor open (first page already delivered), rewrite the
	// world: double the rows, update every old one.
	w, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < before; i += 100 {
		if _, err := w.Exec("UPDATE snap SET v = 'new' WHERE id = ?", core.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	more := make([]wire.BatchStmt, before)
	for i := range more {
		more[i] = wire.BatchStmt{SQL: "INSERT INTO snap VALUES (?, 'late')",
			Args: []core.Value{core.I(int64(before + i))}}
	}
	if _, err := cl.ExecBatch(more); err != nil {
		t.Fatal(err)
	}
	w.Close()

	n := 0
	for rs.Next() {
		if v := rs.Row()[1].Str(); v != "old" {
			t.Fatalf("snapshot leaked post-open write: %q", v)
		}
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != before {
		t.Fatalf("snapshot saw %d rows, want %d", n, before)
	}
}

// rawRequest round-trips one hand-built frame on a raw connection.
func rawRequest(t *testing.T, nc net.Conn, id uint64, op wire.Op, payload []byte) (wire.Code, string, []byte) {
	t.Helper()
	buf := wire.AppendFrame(nil, wire.Frame{RequestID: id, Op: op, Payload: payload})
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		f, err := wire.ReadFrame(nc, false)
		if err != nil {
			t.Fatal(err)
		}
		code, msg, body, err := wire.DecodeResponse(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if f.RequestID == 0 && code == wire.CodeOK {
			continue // the connection greeting
		}
		if f.RequestID != id {
			t.Fatalf("response for request %d, want %d", f.RequestID, id)
		}
		return code, msg, body
	}
}

// TestCursorGoneAndIdempotentClose exercises the cursor table's edge
// semantics at the wire level: unknown ids answer CodeCursorGone on
// ScanNext but succeed on ScanClose (idempotent), and a drained cursor is
// auto-closed server-side.
func TestCursorGoneAndIdempotentClose(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, nil)
	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE cg (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO cg VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// ScanNext on a cursor that never existed.
	code, msg, _ := rawRequest(t, nc, 1, wire.OpScanNext, wire.EncodeScanNext(42, 10))
	if code != wire.CodeCursorGone {
		t.Fatalf("unknown cursor: code %v (%s), want cursor_gone", code, msg)
	}
	// ScanClose on the same unknown id succeeds: close is idempotent.
	if code, msg, _ = rawRequest(t, nc, 2, wire.OpScanClose, wire.EncodeScanClose(42)); code != wire.CodeOK {
		t.Fatalf("idempotent close: code %v (%s)", code, msg)
	}
	// A drained cursor auto-closes: the done page's id is already gone.
	code, msg, body := rawRequest(t, nc, 3, wire.OpScanOpen, wire.EncodeScanOpen(10, "SELECT * FROM cg", nil))
	if code != wire.CodeOK {
		t.Fatalf("scan open: code %v (%s)", code, msg)
	}
	id, done, res, err := wire.DecodeCursorPage(body)
	if err != nil || !done || len(res.Rows) != 1 {
		t.Fatalf("first page: id=%d done=%v rows=%d err=%v", id, done, len(res.Rows), err)
	}
	if code, msg, _ = rawRequest(t, nc, 4, wire.OpScanNext, wire.EncodeScanNext(id, 10)); code != wire.CodeCursorGone {
		t.Fatalf("next after done: code %v (%s), want cursor_gone", code, msg)
	}
	// The connection survived every refusal above.
	if code, _, _ = rawRequest(t, nc, 5, wire.OpPing, nil); code != wire.CodeOK {
		t.Fatalf("connection dead after cursor errors: %v", code)
	}
}

// TestCursorRefusals covers the bounded cursor table and the in-txn
// refusal, and that Rows recovers the session for further use.
func TestCursorRefusals(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MaxCursors = 2 }, nil)
	cl := h.client(t, func(o *client.Options) {
		o.FetchSize = 5
		o.MaxRetries = -1
	})

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE cr (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Exec("INSERT INTO cr VALUES (?)", core.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	// Fill the cursor table (pages of 5 over 100 rows: neither exhausts).
	r1, err := s.Query("SELECT * FROM cr")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Query("SELECT * FROM cr")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Query("SELECT * FROM cr")
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest || !strings.Contains(we.Msg, "cursor table full") {
		t.Fatalf("cursor table overflow: %v", err)
	}
	// Closing one frees a seat.
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Query("SELECT * FROM cr")
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	r3.Close()
	r2.Close()

	// No streaming inside an explicit transaction.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	_, err = s.Query("SELECT * FROM cr")
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("query inside txn: %v", err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Only SELECT streams.
	_, err = s.Query("INSERT INTO cr VALUES (999)")
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("non-select query: %v", err)
	}
	// The session still serves ordinary statements.
	res, err := s.Exec("SELECT * FROM cr WHERE id = 7")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("session after refusals: %v %v", res, err)
	}
}

// TestExecBatchSemantics: per-statement affected vector, atomicity of the
// auto-batch, transaction-verb refusal, and batches inside an explicit
// transaction following its fate.
func TestExecBatchSemantics(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, nil)

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE b (id INT, v TEXT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}

	count := func() int {
		t.Helper()
		res, err := s.Exec("SELECT * FROM b")
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}

	// Mixed batch: inserts, an update, a no-op update.
	aff, err := s.ExecBatch([]wire.BatchStmt{
		{SQL: "INSERT INTO b VALUES (1, 'a')"},
		{SQL: "INSERT INTO b VALUES (?, ?)", Args: []core.Value{core.I(2), core.S("b")}},
		{SQL: "UPDATE b SET v = 'a2' WHERE id = 1"},
		{SQL: "UPDATE b SET v = 'x' WHERE id = 99"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 1, 1, 0}; fmt.Sprint(aff) != fmt.Sprint(want) {
		t.Fatalf("affected = %v, want %v", aff, want)
	}
	if count() != 2 {
		t.Fatalf("rows after batch: %d", count())
	}

	// Atomicity: statement 1 duplicates; statement 0's insert must not
	// survive.
	_, err = s.ExecBatch([]wire.BatchStmt{
		{SQL: "INSERT INTO b VALUES (3, 'c')"},
		{SQL: "INSERT INTO b VALUES (1, 'dup')"},
	})
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeDuplicate {
		t.Fatalf("duplicate in batch: %v", err)
	}
	if !strings.Contains(we.Msg, "batch statement 1") {
		t.Fatalf("error does not name the failing statement: %q", we.Msg)
	}
	if count() != 2 {
		t.Fatalf("failed batch leaked rows: %d", count())
	}

	// Transaction verbs are refused wholesale.
	_, err = s.ExecBatch([]wire.BatchStmt{
		{SQL: "INSERT INTO b VALUES (4, 'd')"},
		{SQL: "COMMIT"},
	})
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("txn verb in batch: %v", err)
	}
	if count() != 2 {
		t.Fatalf("refused batch leaked rows: %d", count())
	}

	// Inside an explicit transaction the batch follows the transaction's
	// fate: rollback discards it...
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecBatch([]wire.BatchStmt{{SQL: "INSERT INTO b VALUES (5, 'e')"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if count() != 2 {
		t.Fatalf("rolled-back batch leaked rows: %d", count())
	}
	// ...commit keeps it.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecBatch([]wire.BatchStmt{{SQL: "INSERT INTO b VALUES (5, 'e')"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if count() != 3 {
		t.Fatalf("committed batch lost: %d", count())
	}
}

// TestDrainWithOpenCursor: a graceful shutdown must not hang on an open
// cursor (it is not an in-flight request between pages), and teardown
// must reap it -- snapshot and worker slot released.
func TestDrainWithOpenCursor(t *testing.T) {
	h := newHarness(t, nil, nil)
	cl := h.client(t, func(o *client.Options) { o.FetchSize = 10 })

	s, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE dr (id INT, PRIMARY KEY(id))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Exec("INSERT INTO dr VALUES (?)", core.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	rs, err := cl.Query("SELECT * FROM dr")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if !rs.Next() {
		t.Fatalf("first row: %v", rs.Err())
	}
	if got := h.reg.Gauge("server.cursors_open").Load(); got != 1 {
		t.Fatalf("cursors_open = %d with a cursor open", got)
	}

	start := time.Now()
	if err := h.srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain took %v with an idle open cursor", d)
	}
	// Teardown reaped the cursor with the connection.
	if got := h.reg.Gauge("server.cursors_open").Load(); got != 0 {
		t.Fatalf("cursors_open = %d after shutdown", got)
	}
	// The client sees the cursor die with the connection, not a hang.
	for rs.Next() {
	}
	if rs.Err() == nil {
		t.Fatal("stream survived server shutdown")
	}
}
