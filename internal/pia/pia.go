// Package pia implements HiEngine's partitioned indirection arrays
// (Section 4.1): the level of indirection that maps record IDs (RIDs) to the
// head of each record's version chain, realizing "the log is the database".
//
// A table is represented by one or more fixed-size indirection arrays
// (partitions). A RID packs a 16-bit partition ID and a 32-bit slot ID, so
// locating a record is two array indexing steps -- no hashing, no tree
// traversal -- while partitions can still be created and dropped on demand
// to grow and shrink the table. Within a partition, slot pages are allocated
// lazily, mirroring the paper's trick of reserving virtual address space and
// letting the OS back it with physical pages on first touch.
//
// Each entry holds an atomic pointer (version installation is a single CAS,
// Section 5.1) plus an epoch counter used by garbage collection and by
// deletes, which clear the pointer but preserve the epoch (Section 4.3).
package pia

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// RID is a record identifier: bits [32,48) are the partition ID and bits
// [0,32) the slot within the partition. A RID uniquely identifies a record
// and never changes during the record's lifetime.
type RID uint64

// InvalidRID is the zero RID; slot 0 of partition 0 is never allocated so
// that InvalidRID is never a live record.
const InvalidRID RID = 0

// MakeRID packs a partition and slot into a RID.
func MakeRID(partition uint16, slot uint32) RID {
	return RID(uint64(partition)<<32 | uint64(slot))
}

// Partition extracts the partition ID.
func (r RID) Partition() uint16 { return uint16(r >> 32) }

// Slot extracts the slot ID.
func (r RID) Slot() uint32 { return uint32(r) }

// String renders the RID as partition:slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Partition(), r.Slot()) }

// Errors.
var (
	// ErrTableFull is returned when all 65536 partitions are exhausted.
	ErrTableFull = errors.New("pia: table full (65536 partitions exhausted)")
	// ErrBadRID is returned for RIDs that do not address an allocated slot.
	ErrBadRID = errors.New("pia: rid out of range")
)

// entry is one indirection array slot.
type entry[T any] struct {
	ptr   atomic.Pointer[T]
	epoch atomic.Uint32
}

// pageBits is the log2 of slots per lazily-allocated page.
const pageBits = 12 // 4096 slots per page

// partition is one fixed-size indirection array with lazily allocated pages.
type partition[T any] struct {
	id       uint16
	slotBits uint

	mu    sync.Mutex // guards page allocation only
	pages []atomic.Pointer[[1 << pageBits]entry[T]]

	// next is the next slot to hand out in this partition.
	next atomic.Uint32
	// live counts slots holding a non-nil pointer (approximate under
	// concurrency; exact when quiesced).
	live atomic.Int64
}

func newPartition[T any](id uint16, slotBits uint) *partition[T] {
	nPages := 1 << (slotBits - pageBits)
	return &partition[T]{
		id:       id,
		slotBits: slotBits,
		pages:    make([]atomic.Pointer[[1 << pageBits]entry[T]], nPages),
	}
}

func (p *partition[T]) capacity() uint32 { return 1 << p.slotBits }

// slot returns the entry for s, allocating its page on first touch; nil if
// the page was never touched and alloc is false.
func (p *partition[T]) slot(s uint32, alloc bool) *entry[T] {
	pi := s >> pageBits
	pg := p.pages[pi].Load()
	if pg == nil {
		if !alloc {
			return nil
		}
		p.mu.Lock()
		pg = p.pages[pi].Load()
		if pg == nil {
			pg = new([1 << pageBits]entry[T])
			p.pages[pi].Store(pg)
		}
		p.mu.Unlock()
	}
	return &pg[s&(1<<pageBits-1)]
}

// Config configures a Map.
type Config struct {
	// SlotBits is the log2 of slots per partition. The paper uses 32
	// (4 Gi slots per partition); the default here is 20 so tests and
	// benchmarks do not reserve gigabytes of page tables. Must be at
	// least pageBits and at most 32.
	SlotBits uint
}

// Map is the full per-table indirection structure: a dynamic set of
// partitions addressed by the high bits of the RID. The partition list is
// published through an atomic pointer so the hot read path (two array
// indexing steps, Section 4.1) takes no locks; growth copies the list under
// the mutex and swaps it in.
type Map[T any] struct {
	slotBits uint

	mu         sync.Mutex                      // guards growth only
	partitions atomic.Pointer[[]*partition[T]] // index = partition ID

	// allocPart is the partition currently accepting new RIDs.
	allocPart atomic.Pointer[partition[T]]
}

// New builds an empty Map. A first partition is created eagerly so that
// allocation never observes an empty table.
func New[T any](cfg Config) *Map[T] {
	if cfg.SlotBits == 0 {
		cfg.SlotBits = 20
	}
	if cfg.SlotBits < pageBits {
		cfg.SlotBits = pageBits
	}
	if cfg.SlotBits > 32 {
		cfg.SlotBits = 32
	}
	m := &Map[T]{slotBits: cfg.SlotBits}
	p := newPartition[T](0, cfg.SlotBits)
	// Burn slot 0 of partition 0 so InvalidRID never addresses a record.
	p.next.Store(1)
	parts := []*partition[T]{p}
	m.partitions.Store(&parts)
	m.allocPart.Store(p)
	return m
}

// SlotBits reports the configured slots-per-partition exponent.
func (m *Map[T]) SlotBits() uint { return m.slotBits }

// Partitions returns the current partition count.
func (m *Map[T]) Partitions() int {
	return len(*m.partitions.Load())
}

// part returns partition id, or nil when out of range or dropped.
func (m *Map[T]) part(id uint16) *partition[T] {
	parts := *m.partitions.Load()
	if int(id) >= len(parts) {
		return nil
	}
	return parts[id]
}

// grow appends a fresh partition and returns it.
func (m *Map[T]) grow() (*partition[T], error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Another allocator may have grown the table while we waited.
	cur := m.allocPart.Load()
	if cur != nil && cur.next.Load() < cur.capacity() {
		return cur, nil
	}
	old := *m.partitions.Load()
	if len(old) > math.MaxUint16 {
		return nil, ErrTableFull
	}
	p := newPartition[T](uint16(len(old)), m.slotBits)
	parts := append(append([]*partition[T](nil), old...), p)
	m.partitions.Store(&parts)
	m.allocPart.Store(p)
	return p, nil
}

// Alloc reserves a fresh RID and returns it. The slot starts with a nil
// pointer and epoch 0; the caller installs the first version with Store or
// CompareAndSwap.
func (m *Map[T]) Alloc() (RID, error) {
	for {
		p := m.allocPart.Load()
		s := p.next.Add(1) - 1
		if s < p.capacity() {
			return MakeRID(p.id, s), nil
		}
		// Partition exhausted; grow (or pick up a concurrent grow).
		np, err := m.grow()
		if err != nil {
			return InvalidRID, err
		}
		_ = np
	}
}

// AllocAt forces allocation of a specific RID, creating intermediate
// partitions as needed. Recovery uses this to rebuild the indirection
// arrays exactly as the checkpoint and log dictate; the fast path is
// read-locked so parallel replay threads do not serialize here.
func (m *Map[T]) AllocAt(rid RID) error {
	pid := rid.Partition()
	p := m.part(pid)
	if p == nil {
		m.mu.Lock()
		parts := append([]*partition[T](nil), *m.partitions.Load()...)
		for int(pid) >= len(parts) {
			np := newPartition[T](uint16(len(parts)), m.slotBits)
			parts = append(parts, np)
			m.allocPart.Store(np)
		}
		m.partitions.Store(&parts)
		p = parts[pid]
		m.mu.Unlock()
	}
	if rid.Slot() >= p.capacity() {
		return fmt.Errorf("%w: %v (cap %d)", ErrBadRID, rid, p.capacity())
	}
	// Raise the allocation cursor past this slot so future Allocs do not
	// hand it out again.
	for {
		cur := p.next.Load()
		if cur > rid.Slot() || p.next.CompareAndSwap(cur, rid.Slot()+1) {
			break
		}
	}
	// Touch the slot's page so later Get/CAS calls find it allocated.
	p.slot(rid.Slot(), true)
	return nil
}

// Get loads the pointer stored at rid (nil if unset or deleted).
func (m *Map[T]) Get(rid RID) *T {
	p := m.part(rid.Partition())
	if p == nil || rid.Slot() >= p.capacity() {
		return nil
	}
	e := p.slot(rid.Slot(), false)
	if e == nil {
		return nil
	}
	return e.ptr.Load()
}

// Store unconditionally sets the pointer at rid.
func (m *Map[T]) Store(rid RID, v *T) error {
	e, err := m.entryOf(rid)
	if err != nil {
		return err
	}
	old := e.ptr.Swap(v)
	m.accountSwap(rid, old, v)
	return nil
}

// CompareAndSwap installs v at rid iff the current pointer is old. This is
// the version-installation primitive of Section 5.1 and the replay conflict
// resolution of Section 4.3.
func (m *Map[T]) CompareAndSwap(rid RID, old, v *T) (bool, error) {
	e, err := m.entryOf(rid)
	if err != nil {
		return false, err
	}
	ok := e.ptr.CompareAndSwap(old, v)
	if ok {
		m.accountSwap(rid, old, v)
	}
	return ok, nil
}

func (m *Map[T]) accountSwap(rid RID, old, v *T) {
	p := m.part(rid.Partition())
	if p == nil {
		return
	}
	switch {
	case old == nil && v != nil:
		p.live.Add(1)
	case old != nil && v == nil:
		p.live.Add(-1)
	}
}

// Delete clears the pointer at rid but preserves (and advances) the entry's
// epoch, per Section 4.3's delete-replay semantics.
func (m *Map[T]) Delete(rid RID) error {
	e, err := m.entryOf(rid)
	if err != nil {
		return err
	}
	old := e.ptr.Swap(nil)
	if old != nil {
		m.part(rid.Partition()).live.Add(-1)
	}
	e.epoch.Add(1)
	return nil
}

// Epoch returns the GC epoch stored at rid.
func (m *Map[T]) Epoch(rid RID) uint32 {
	p := m.part(rid.Partition())
	if p == nil || rid.Slot() >= p.capacity() {
		return 0
	}
	e := p.slot(rid.Slot(), false)
	if e == nil {
		return 0
	}
	return e.epoch.Load()
}

// SetEpoch stores a GC epoch at rid.
func (m *Map[T]) SetEpoch(rid RID, epoch uint32) error {
	e, err := m.entryOf(rid)
	if err != nil {
		return err
	}
	e.epoch.Store(epoch)
	return nil
}

func (m *Map[T]) entryOf(rid RID) (*entry[T], error) {
	p := m.part(rid.Partition())
	if p == nil {
		return nil, fmt.Errorf("%w: %v (no partition)", ErrBadRID, rid)
	}
	if rid.Slot() >= p.capacity() {
		return nil, fmt.Errorf("%w: %v (cap %d)", ErrBadRID, rid, p.capacity())
	}
	return p.slot(rid.Slot(), true), nil
}

// Live returns the approximate number of slots holding non-nil pointers.
func (m *Map[T]) Live() int64 {
	var n int64
	for _, p := range *m.partitions.Load() {
		if p != nil {
			n += p.live.Load()
		}
	}
	return n
}

// Range calls fn for every allocated slot holding a non-nil pointer, in RID
// order, until fn returns false. Checkpointing and compaction are built on
// this scan.
func (m *Map[T]) Range(fn func(rid RID, v *T) bool) {
	for _, p := range *m.partitions.Load() {
		if p == nil {
			continue
		}
		limit := p.next.Load()
		if limit > p.capacity() {
			limit = p.capacity()
		}
		for s := uint32(0); s < limit; s++ {
			e := p.slot(s, false)
			if e == nil {
				// Skip the rest of this untouched page.
				s |= 1<<pageBits - 1
				continue
			}
			if v := e.ptr.Load(); v != nil {
				if !fn(MakeRID(p.id, s), v) {
					return
				}
			}
		}
	}
}

// RangeAll is Range but also visits nil-pointer slots that were allocated
// (recovery and invariant checks need to see tombstoned entries).
func (m *Map[T]) RangeAll(fn func(rid RID, v *T, epoch uint32) bool) {
	for _, p := range *m.partitions.Load() {
		if p == nil {
			continue
		}
		limit := p.next.Load()
		if limit > p.capacity() {
			limit = p.capacity()
		}
		for s := uint32(0); s < limit; s++ {
			e := p.slot(s, false)
			if e == nil {
				s |= 1<<pageBits - 1
				continue
			}
			if !fn(MakeRID(p.id, s), e.ptr.Load(), e.epoch.Load()) {
				return
			}
		}
	}
}
