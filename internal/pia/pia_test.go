package pia

import (
	"sync"
	"testing"
	"testing/quick"
)

type rec struct{ v int }

func TestRIDPacking(t *testing.T) {
	r := MakeRID(0x1234, 0xdeadbeef)
	if r.Partition() != 0x1234 || r.Slot() != 0xdeadbeef {
		t.Fatalf("pack/unpack: %v", r)
	}
	if InvalidRID.Partition() != 0 || InvalidRID.Slot() != 0 {
		t.Fatal("InvalidRID not zero")
	}
}

func TestAllocNeverReturnsInvalid(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	for i := 0; i < 100; i++ {
		rid, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if rid == InvalidRID {
			t.Fatal("Alloc returned InvalidRID")
		}
	}
}

func TestStoreGetDelete(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	rid, _ := m.Alloc()
	if got := m.Get(rid); got != nil {
		t.Fatal("fresh slot not nil")
	}
	v := &rec{v: 42}
	if err := m.Store(rid, v); err != nil {
		t.Fatal(err)
	}
	if got := m.Get(rid); got != v {
		t.Fatal("Get != stored value")
	}
	if m.Live() != 1 {
		t.Fatalf("Live = %d", m.Live())
	}
	e0 := m.Epoch(rid)
	if err := m.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if m.Get(rid) != nil {
		t.Fatal("Get after delete not nil")
	}
	if m.Epoch(rid) != e0+1 {
		t.Fatalf("delete did not advance epoch: %d -> %d", e0, m.Epoch(rid))
	}
	if m.Live() != 0 {
		t.Fatalf("Live after delete = %d", m.Live())
	}
}

func TestCompareAndSwap(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	rid, _ := m.Alloc()
	a, b := &rec{1}, &rec{2}
	if ok, _ := m.CompareAndSwap(rid, nil, a); !ok {
		t.Fatal("CAS nil->a failed")
	}
	if ok, _ := m.CompareAndSwap(rid, nil, b); ok {
		t.Fatal("CAS nil->b succeeded over a")
	}
	if ok, _ := m.CompareAndSwap(rid, a, b); !ok {
		t.Fatal("CAS a->b failed")
	}
	if m.Get(rid) != b {
		t.Fatal("wrong final value")
	}
}

func TestGrowthAcrossPartitions(t *testing.T) {
	m := New[rec](Config{SlotBits: 12}) // 4096 slots per partition
	seen := make(map[RID]bool)
	for i := 0; i < 3*4096; i++ {
		rid, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[rid] {
			t.Fatalf("duplicate RID %v", rid)
		}
		seen[rid] = true
	}
	if p := m.Partitions(); p < 3 {
		t.Fatalf("partitions = %d, want >= 3", p)
	}
}

func TestConcurrentAllocUnique(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	const workers, per = 8, 2000 // forces partition growth mid-run
	rids := make([][]RID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rid, err := m.Alloc()
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				rids[w] = append(rids[w], rid)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[RID]bool, workers*per)
	for _, rs := range rids {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("duplicate RID %v", r)
			}
			seen[r] = true
		}
	}
}

func TestAllocAtForRecovery(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	rid := MakeRID(2, 100) // partition 2 does not exist yet
	if err := m.AllocAt(rid); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(rid, &rec{7}); err != nil {
		t.Fatal(err)
	}
	if m.Get(rid).v != 7 {
		t.Fatal("store after AllocAt failed")
	}
	// Fresh allocations must not collide with the recovered RID.
	for i := 0; i < 200; i++ {
		r, _ := m.Alloc()
		if r == rid {
			t.Fatal("Alloc reissued recovered RID")
		}
	}
	// Out-of-range slot in an existing partition.
	if err := m.AllocAt(MakeRID(0, 1<<13)); err == nil {
		t.Fatal("AllocAt past capacity succeeded")
	}
}

func TestBadRID(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	bad := MakeRID(9, 0)
	if m.Get(bad) != nil {
		t.Fatal("Get on missing partition returned value")
	}
	if err := m.Store(bad, &rec{}); err == nil {
		t.Fatal("Store on missing partition succeeded")
	}
	if _, err := m.CompareAndSwap(bad, nil, &rec{}); err == nil {
		t.Fatal("CAS on missing partition succeeded")
	}
}

func TestRangeOrderAndContents(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	want := make(map[RID]int)
	for i := 0; i < 5000; i++ {
		rid, _ := m.Alloc()
		if i%3 == 0 {
			continue // leave a hole
		}
		m.Store(rid, &rec{v: i})
		want[rid] = i
	}
	var prev RID
	got := 0
	m.Range(func(rid RID, v *rec) bool {
		if rid <= prev {
			t.Fatalf("Range out of order: %v after %v", rid, prev)
		}
		prev = rid
		if want[rid] != v.v {
			t.Fatalf("Range value mismatch at %v", rid)
		}
		got++
		return true
	})
	if got != len(want) {
		t.Fatalf("Range visited %d, want %d", got, len(want))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	for i := 0; i < 100; i++ {
		rid, _ := m.Alloc()
		m.Store(rid, &rec{v: i})
	}
	n := 0
	m.Range(func(RID, *rec) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRangeAllSeesTombstones(t *testing.T) {
	m := New[rec](Config{SlotBits: 12})
	rid, _ := m.Alloc()
	m.Store(rid, &rec{1})
	m.Delete(rid)
	found := false
	m.RangeAll(func(r RID, v *rec, epoch uint32) bool {
		if r == rid {
			found = true
			if v != nil {
				t.Fatal("tombstone has value")
			}
			if epoch != 1 {
				t.Fatalf("tombstone epoch = %d", epoch)
			}
		}
		return true
	})
	if !found {
		t.Fatal("RangeAll skipped tombstoned slot")
	}
}

func TestPropertyMapEquivalence(t *testing.T) {
	// The PIA must behave exactly like a map[RID]*rec under a random
	// store/delete workload.
	m := New[rec](Config{SlotBits: 12})
	ref := make(map[RID]*rec)
	var rids []RID
	f := func(op uint8, val int) bool {
		switch {
		case op%4 < 2 || len(rids) == 0: // alloc+store
			rid, err := m.Alloc()
			if err != nil {
				return false
			}
			v := &rec{v: val}
			if m.Store(rid, v) != nil {
				return false
			}
			ref[rid] = v
			rids = append(rids, rid)
		case op%4 == 2: // delete
			rid := rids[((val%len(rids))+len(rids))%len(rids)]
			m.Delete(rid)
			delete(ref, rid)
		default: // get
			rid := rids[((val%len(rids))+len(rids))%len(rids)]
			if m.Get(rid) != ref[rid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Final sweep.
	for _, rid := range rids {
		if m.Get(rid) != ref[rid] {
			t.Fatalf("final mismatch at %v", rid)
		}
	}
	if m.Live() != int64(len(ref)) {
		t.Fatalf("Live = %d, want %d", m.Live(), len(ref))
	}
}
