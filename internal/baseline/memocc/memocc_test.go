package memocc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
)

func schema() *core.Schema {
	return &core.Schema{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "grp", Kind: core.KindInt},
			{Name: "v", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{
			{Name: "pk", Columns: []int{0}, Unique: true},
			{Name: "by_grp", Columns: []int{1}, Unique: false},
		},
	}
}

func testDB(t *testing.T, mut ...func(*Config)) *DB {
	t.Helper()
	cfg := Config{Service: srss.New(srss.Config{}), SegmentSize: 1 << 20}
	for _, m := range mut {
		m(&cfg)
	}
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := db.CreateTable(schema()); err != nil {
		t.Fatal(err)
	}
	return db
}

func put(t *testing.T, db *DB, id, grp int64, v string) {
	t.Helper()
	tx, _ := db.Begin(0)
	if err := tx.Insert("t", core.Row{core.I(id), core.I(grp), core.S(v)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCRUD(t *testing.T) {
	db := testDB(t)
	put(t, db, 1, 10, "one")

	tx, _ := db.Begin(0)
	row, err := tx.GetByKey("t", 0, core.I(1))
	if err != nil || row[2].Str() != "one" {
		t.Fatalf("get: %v %v", row, err)
	}
	if err := tx.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.I(10), core.S("uno")}); err != nil {
		t.Fatal(err)
	}
	// Own write visible.
	row, _ = tx.GetByKey("t", 0, core.I(1))
	if row[2].Str() != "uno" {
		t.Fatal("own update invisible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin(0)
	if err := tx2.DeleteByKey("t", core.I(1)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	tx3, _ := db.Begin(0)
	if _, err := tx3.GetByKey("t", 0, core.I(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted visible: %v", err)
	}
	tx3.Commit()
}

func TestDuplicateRejected(t *testing.T) {
	db := testDB(t)
	put(t, db, 1, 1, "x")
	// OCC defers the duplicate decision to commit (after read validation
	// has ruled out a stale-snapshot race).
	tx, _ := db.Begin(0)
	if err := tx.Insert("t", core.Row{core.I(1), core.I(1), core.S("dup")}); err != nil {
		t.Fatalf("insert buffering: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate at commit: %v", err)
	}
	// The original row is intact.
	tx2, _ := db.Begin(0)
	row, err := tx2.GetByKey("t", 0, core.I(1))
	if err != nil || row[2].Str() != "x" {
		t.Fatalf("row clobbered by failed duplicate: %v %v", row, err)
	}
	tx2.Commit()
	// Same-transaction double insert fails immediately.
	tx3, _ := db.Begin(0)
	tx3.Insert("t", core.Row{core.I(7), core.I(1), core.S("a")})
	if err := tx3.Insert("t", core.Row{core.I(7), core.I(1), core.S("b")}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("same-txn double insert: %v", err)
	}
}

func TestInsertAfterDeleteReusesKey(t *testing.T) {
	db := testDB(t)
	put(t, db, 1, 1, "x")
	tx, _ := db.Begin(0)
	tx.DeleteByKey("t", core.I(1))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	put(t, db, 1, 2, "y")
	tx2, _ := db.Begin(0)
	row, err := tx2.GetByKey("t", 0, core.I(1))
	if err != nil || row[2].Str() != "y" {
		t.Fatalf("reinsert: %v %v", row, err)
	}
	tx2.Commit()
}

func TestOCCValidationAbortsStaleReader(t *testing.T) {
	db := testDB(t)
	put(t, db, 1, 1, "v0")

	reader, _ := db.Begin(0)
	if _, err := reader.GetByKey("t", 0, core.I(1)); err != nil {
		t.Fatal(err)
	}
	// A writer commits between the reader's read and its commit.
	writer, _ := db.Begin(1)
	writer.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.I(1), core.S("v1")})
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// The reader also writes something, so validation runs with locks.
	if err := reader.Insert("t", core.Row{core.I(2), core.I(1), core.S("z")}); err != nil {
		t.Fatal(err)
	}
	if err := reader.Commit(); !errors.Is(err, ErrAbort) {
		t.Fatalf("stale read not caught: %v", err)
	}
}

func TestReadOnlyValidation(t *testing.T) {
	db := testDB(t)
	put(t, db, 1, 1, "v0")
	r, _ := db.Begin(0)
	r.GetByKey("t", 0, core.I(1))
	w, _ := db.Begin(1)
	w.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.I(1), core.S("v1")})
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); !errors.Is(err, ErrAbort) {
		t.Fatalf("read-only validation: %v", err)
	}
}

func TestSecondaryScan(t *testing.T) {
	db := testDB(t)
	for i := int64(0); i < 30; i++ {
		put(t, db, i, i%3, fmt.Sprintf("v%d", i))
	}
	tx, _ := db.Begin(0)
	n := 0
	if err := tx.ScanPrefix("t", 1, []core.Value{core.I(1)}, func(row core.Row) bool {
		if row[1].Int() != 1 {
			t.Fatalf("scan leaked group %d", row[1].Int())
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("group scan found %d, want 10", n)
	}
	tx.Commit()
}

func TestRowCacheServesRepeatLookups(t *testing.T) {
	db := testDB(t)
	put(t, db, 1, 1, "x")
	tx, _ := db.Begin(0)
	for i := 0; i < 10; i++ {
		if _, err := tx.GetByKey("t", 0, core.I(1)); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if db.caches[0].m == nil || len(db.caches[0].m) == 0 {
		t.Fatal("row cache never populated")
	}
}

func TestConcurrentCountersExactlyOnce(t *testing.T) {
	// Concurrent increments with OCC retry: the final value equals the
	// number of successful commits.
	db := testDB(t)
	put(t, db, 1, 0, "ctr")
	const workers, attempts = 8, 200
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ok int64
			for i := 0; i < attempts; i++ {
				tx, _ := db.Begin(w)
				row, err := tx.GetByKey("t", 0, core.I(1))
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.UpdateByKey("t", 0, []core.Value{core.I(1)},
					core.Row{core.I(1), core.I(row[1].Int() + 1), core.S("ctr")}); err != nil {
					continue
				}
				if err := tx.Commit(); err == nil {
					ok++
				} else if !errors.Is(err, ErrAbort) {
					t.Errorf("commit: %v", err)
					return
				}
			}
			mu.Lock()
			committed += ok
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	tx, _ := db.Begin(0)
	row, err := tx.GetByKey("t", 0, core.I(1))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if row[1].Int() != committed {
		t.Fatalf("counter = %d, committed = %d", row[1].Int(), committed)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestConcurrentInsertsUniqueWinner(t *testing.T) {
	db := testDB(t)
	const workers = 8
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, _ := db.Begin(w)
			err := tx.Insert("t", core.Row{core.I(777), core.I(int64(w)), core.S("r")})
			if err == nil {
				err = tx.Commit()
			}
			if err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			} else if !errors.Is(err, ErrDuplicate) && !errors.Is(err, ErrAbort) {
				t.Errorf("unexpected: %v", err)
			}
		}(w)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("winners = %d, want 1", wins)
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	db := testDB(t)
	const keys = 50
	for i := int64(0); i < keys; i++ {
		put(t, db, i, i%5, "init")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				tx, _ := db.Begin(w)
				id := int64(rng.Intn(keys))
				switch rng.Intn(4) {
				case 0:
					tx.GetByKey("t", 0, core.I(id))
				case 1:
					tx.UpdateByKey("t", 0, []core.Value{core.I(id)},
						core.Row{core.I(id), core.I(int64(i)), core.S("u")})
				case 2:
					tx.ScanPrefix("t", 1, []core.Value{core.I(id % 5)}, func(core.Row) bool { return true })
				case 3:
					tx.GetByKey("t", 0, core.I(id))
					tx.UpdateByKey("t", 0, []core.Value{core.I((id + 1) % keys)},
						core.Row{core.I((id + 1) % keys), core.I(int64(i)), core.S("u2")})
				}
				tx.Commit() // ErrAbort acceptable
			}
		}(w)
	}
	wg.Wait()
	if db.Commits.Load() == 0 {
		t.Fatal("no commits under stress")
	}
	// Table intact: all keys readable.
	tx, _ := db.Begin(0)
	for i := int64(0); i < keys; i++ {
		if _, err := tx.GetByKey("t", 0, core.I(i)); err != nil {
			t.Fatalf("key %d lost: %v", i, err)
		}
	}
	tx.Commit()
}

func TestImplementsEngineAPI(t *testing.T) {
	var _ engineapi.DB = (*DB)(nil)
}
