// Package memocc is the memory-optimized baseline engine standing in for
// DBMS-M (the openGauss MOT-like commercial engine of Section 6.1.2): a
// single-version main-memory engine with Silo-style optimistic concurrency
// control, in-memory ART indexes, a transactional thread-local row cache,
// and group-committed redo logging.
//
// Per the paper's methodology, the engine persists its log in the compute
// tier so that network I/O does not dominate its runtime -- the comparison
// against HiEngine (Figures 6-7) is about engine architecture (OCC
// validation, single-version in-place updates, no cloud-native features),
// not about storage placement.
//
// Key contrasts with HiEngine: records are updated in place under short
// commit-time locks (no MVCC version chains, so readers of concurrently
// committed records abort at validation instead of reading snapshots);
// commit acknowledgements wait for the next group-commit epoch tick rather
// than pipelining (HiEngine's early commit, Section 5.2, is the paper's
// counterpoint); and the thread-local row cache gives it a different NUMA
// profile (fewer remote index traversals), which Figure 7 calls out.
package memocc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/delay"

	"hiengine/internal/art"
	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/pia"
	"hiengine/internal/srss"
	"hiengine/internal/wal"
)

// Errors. The retryable/duplicate/missing categories wrap the engineapi
// sentinels so drivers classify them uniformly.
var (
	ErrAbort       = fmt.Errorf("memocc: validation failed, transaction aborted: %w", engineapi.ErrConflict)
	ErrNotFound    = fmt.Errorf("memocc: %w", engineapi.ErrNotFound)
	ErrDuplicate   = fmt.Errorf("memocc: %w", engineapi.ErrDuplicate)
	ErrTxnDone     = errors.New("memocc: transaction finished")
	ErrUnsupported = errors.New("memocc: unsupported operation")
)

// Config configures the engine.
type Config struct {
	Service *srss.Service
	// Workers is the session-slot count (default 8); each slot owns a
	// thread-local row cache.
	Workers int
	// RowCacheSize bounds each worker's row cache (default 4096; 0
	// disables the cache).
	RowCacheSize int
	// GroupWindow is the group-commit epoch: commit acknowledgements wait
	// for the next epoch tick after their log records are written (MOT's
	// group commit). 0 disables the wait (ablation). Default 200us.
	GroupWindow time.Duration
	LogStreams  int
	SegmentSize int64
	BatchMax    int
}

func (c *Config) fill() error {
	if c.Service == nil {
		return errors.New("memocc: Config.Service required")
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.RowCacheSize == 0 {
		c.RowCacheSize = 4096
	}
	if c.GroupWindow == 0 {
		c.GroupWindow = 200 * time.Microsecond
	}
	if c.LogStreams <= 0 {
		c.LogStreams = c.Workers
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 8 << 20
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	return nil
}

// record is one row: a Silo-style TID word (bit 0 = locked, upper bits =
// version) plus the current encoded row (nil = absent/deleted).
type record struct {
	tid  atomic.Uint64
	data atomic.Pointer[[]byte]
}

const lockBit uint64 = 1

func (r *record) lock() bool {
	for i := 0; i < 256; i++ {
		v := r.tid.Load()
		if v&lockBit != 0 {
			if i&15 == 15 {
				runtime.Gosched()
			}
			continue
		}
		if r.tid.CompareAndSwap(v, v|lockBit) {
			return true
		}
	}
	return false // no-wait after bounded spinning
}

func (r *record) unlockBump(newVersion uint64) {
	r.tid.Store(newVersion << 1) // clears lock bit
}

func (r *record) unlock() {
	r.tid.Store(r.tid.Load() &^ lockBit)
}

// stableRead returns a consistent (data, version) pair.
func (r *record) stableRead() ([]byte, uint64) {
	for i := 0; ; i++ {
		v1 := r.tid.Load()
		if v1&lockBit != 0 {
			if i&15 == 15 {
				runtime.Gosched()
			}
			continue
		}
		d := r.data.Load()
		if r.tid.Load() != v1 {
			continue
		}
		if d == nil {
			return nil, v1
		}
		return *d, v1
	}
}

// table is schema + record store + ART indexes (index 0 = primary).
type table struct {
	id      uint32
	schema  *core.Schema
	records *pia.Map[record]
	indexes []*art.Tree
	insMu   [64]sync.Mutex // stripe locks for unique insert check+reserve
}

func (t *table) stripe(key []byte) *sync.Mutex {
	var h uint32 = 2166136261
	for _, c := range key {
		h = (h ^ uint32(c)) * 16777619
	}
	return &t.insMu[h&63]
}

func (t *table) keyOf(idx int, row core.Row) []byte {
	def := t.schema.Indexes[idx]
	vals := make([]core.Value, len(def.Columns))
	for i, c := range def.Columns {
		vals[i] = row[c]
	}
	return core.EncodeKey(nil, vals...)
}

func (t *table) indexKey(idx int, row core.Row, rid pia.RID) []byte {
	k := t.keyOf(idx, row)
	if !t.schema.Indexes[idx].Unique {
		k = core.EncodeRIDSuffix(k, uint64(rid))
	}
	return k
}

// rowCache is the transactional thread-local row cache: it memoizes
// key -> RID resolutions so repeated accesses skip the shared index.
type rowCache struct {
	m   map[string]pia.RID
	cap int
}

func (c *rowCache) get(k string) (pia.RID, bool) {
	if c.m == nil {
		return 0, false
	}
	rid, ok := c.m[k]
	return rid, ok
}

func (c *rowCache) put(k string, rid pia.RID) {
	if c.cap <= 0 {
		return
	}
	if c.m == nil {
		c.m = make(map[string]pia.RID, 64)
	}
	if len(c.m) >= c.cap {
		for key := range c.m { // random-ish eviction
			delete(c.m, key)
			break
		}
	}
	c.m[k] = rid
}

// DB is one engine instance.
type DB struct {
	cfg Config
	svc *srss.Service
	log *wal.Manager

	mu     sync.RWMutex
	tables map[string]*table

	commitSeq atomic.Uint64

	caches []rowCache

	// Stats.
	Commits atomic.Int64
	Aborts  atomic.Int64
}

// New builds an engine.
func New(cfg Config) (*DB, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	log, err := wal.Open(wal.Config{
		Service: cfg.Service, Tier: srss.TierCompute,
		Streams: cfg.LogStreams, SegmentSize: cfg.SegmentSize, BatchMax: cfg.BatchMax,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{cfg: cfg, svc: cfg.Service, log: log, tables: make(map[string]*table)}
	db.caches = make([]rowCache, cfg.Workers)
	for i := range db.caches {
		db.caches[i].cap = cfg.RowCacheSize
	}
	return db, nil
}

// Name implements engineapi.DB.
func (db *DB) Name() string { return "memocc" }

// Close shuts the engine down.
func (db *DB) Close() { db.log.Close() }

// CreateTable implements engineapi.DB.
func (db *DB) CreateTable(s *core.Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("memocc: table %q exists", s.Name)
	}
	t := &table{
		id:      uint32(len(db.tables) + 1),
		schema:  s,
		records: pia.New[record](pia.Config{}),
	}
	for range s.Indexes {
		t.indexes = append(t.indexes, art.New())
	}
	db.tables[s.Name] = t
	return nil
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("memocc: no table %q", name)
	}
	return t, nil
}

// --- transactions -----------------------------------------------------------

type readEntry struct {
	rec *record
	ver uint64
}

type writeOp struct {
	tbl     *table
	rid     pia.RID
	rec     *record
	newData []byte // nil = delete
	insert  bool
	op      byte
	logOff  int
	newIdx  []idxAdd // secondary entries added at commit for inserts
}

type idxAdd struct {
	tree *art.Tree
	key  []byte
}

// Txn is one OCC transaction.
type Txn struct {
	db       *DB
	worker   int
	reads    []readEntry
	writes   []writeOp
	logBuf   []byte
	finished bool
}

// Begin implements engineapi.DB.
func (db *DB) Begin(worker int) (engineapi.Txn, error) {
	return &Txn{db: db, worker: worker % db.cfg.Workers}, nil
}

// lookupRID resolves an encoded primary key through the thread-local row
// cache, falling back to the shared index.
func (t *Txn) lookupRID(tbl *table, key []byte) (pia.RID, bool) {
	// The cache key must be table-qualified: encoded keys from different
	// tables (e.g. district (w,d) and stock (w,i)) collide byte-for-byte.
	ck := string([]byte{byte(tbl.id), byte(tbl.id >> 8), byte(tbl.id >> 16), byte(tbl.id >> 24)}) + string(key)
	cache := &t.db.caches[t.worker]
	if rid, ok := cache.get(ck); ok {
		if tbl.records.Get(rid) != nil {
			return rid, true
		}
	}
	ridU, found, _ := tbl.indexes[0].Search(key)
	if !found {
		return 0, false
	}
	rid := pia.RID(ridU)
	cache.put(ck, rid)
	return rid, true
}

// pendingWrite returns this txn's buffered write for rec, if any.
func (t *Txn) pendingWrite(rec *record) *writeOp {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].rec == rec {
			return &t.writes[i]
		}
	}
	return nil
}

// GetByKey implements engineapi.Txn.
func (t *Txn) GetByKey(table string, idx int, key ...core.Value) (core.Row, error) {
	if t.finished {
		return nil, ErrTxnDone
	}
	tbl, err := t.db.table(table)
	if err != nil {
		return nil, err
	}
	def := tbl.schema.Indexes[idx]
	if !def.Unique {
		return nil, fmt.Errorf("memocc: GetByKey on non-unique index %q", def.Name)
	}
	k := core.EncodeKey(nil, key...)
	var rid pia.RID
	var found bool
	if idx == 0 {
		rid, found = t.lookupRID(tbl, k)
	} else {
		ridU, f, _ := tbl.indexes[idx].Search(k)
		rid, found = pia.RID(ridU), f
	}
	if !found {
		return nil, ErrNotFound
	}
	rec := tbl.records.Get(rid)
	if rec == nil {
		return nil, ErrNotFound
	}
	if w := t.pendingWrite(rec); w != nil {
		if w.newData == nil {
			return nil, ErrNotFound
		}
		return core.DecodeRow(w.newData)
	}
	data, ver := rec.stableRead()
	t.reads = append(t.reads, readEntry{rec: rec, ver: ver})
	if data == nil {
		return nil, ErrNotFound
	}
	return core.DecodeRow(data)
}

// ScanPrefix implements engineapi.Txn.
func (t *Txn) ScanPrefix(table string, idx int, prefix []core.Value, fn func(core.Row) bool) error {
	if t.finished {
		return ErrTxnDone
	}
	tbl, err := t.db.table(table)
	if err != nil {
		return err
	}
	p := core.EncodeKey(nil, prefix...)
	var scanErr error
	tbl.indexes[idx].Scan(p, core.KeySuccessor(p), func(_ []byte, ridU uint64, tomb bool) bool {
		if tomb {
			return true
		}
		rec := tbl.records.Get(pia.RID(ridU))
		if rec == nil {
			return true
		}
		var data []byte
		if w := t.pendingWrite(rec); w != nil {
			data = w.newData
		} else {
			var ver uint64
			data, ver = rec.stableRead()
			t.reads = append(t.reads, readEntry{rec: rec, ver: ver})
		}
		if data == nil {
			return true
		}
		row, err := core.DecodeRow(data)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(row)
	})
	return scanErr
}

// Insert implements engineapi.Txn.
func (t *Txn) Insert(table string, row core.Row) error {
	if t.finished {
		return ErrTxnDone
	}
	tbl, err := t.db.table(table)
	if err != nil {
		return err
	}
	if len(row) != len(tbl.schema.Columns) {
		return fmt.Errorf("memocc: row arity %d != %d", len(row), len(tbl.schema.Columns))
	}
	pk := tbl.keyOf(0, row)
	enc := core.EncodeRow(nil, row)

	mu := tbl.stripe(pk)
	mu.Lock()
	ridU, found, _ := tbl.indexes[0].Search(pk)
	var rid pia.RID
	var rec *record
	if found {
		rid = pia.RID(ridU)
		rec = tbl.records.Get(rid)
		if rec != nil {
			// A same-transaction double insert is a definite duplicate.
			// An existing *committed* row is only tentatively one: the
			// commit-time check decides, after read validation has had
			// the chance to turn a stale-snapshot race into a retryable
			// abort (classic OCC deferral).
			if w := t.pendingWrite(rec); w != nil && w.newData != nil {
				mu.Unlock()
				t.fail()
				return ErrDuplicate
			}
		}
	}
	if rec == nil {
		var err error
		rid, err = tbl.records.Alloc()
		if err != nil {
			mu.Unlock()
			t.fail()
			return err
		}
		rec = &record{}
		if err := tbl.records.Store(rid, rec); err != nil {
			mu.Unlock()
			t.fail()
			return err
		}
		tbl.indexes[0].Insert(pk, uint64(rid))
	}
	mu.Unlock()

	w := writeOp{tbl: tbl, rid: rid, rec: rec, newData: enc, insert: true, op: wal.OpInsert}
	for i := 1; i < len(tbl.indexes); i++ {
		w.newIdx = append(w.newIdx, idxAdd{tree: tbl.indexes[i], key: tbl.indexKey(i, row, rid)})
	}
	t.logBuf, w.logOff = wal.AppendRecord(t.logBuf, wal.OpInsert, tbl.id, uint64(rid), enc)
	t.writes = append(t.writes, w)
	return nil
}

// UpdateByKey implements engineapi.Txn.
func (t *Txn) UpdateByKey(table string, idx int, key []core.Value, newRow core.Row) error {
	if t.finished {
		return ErrTxnDone
	}
	tbl, err := t.db.table(table)
	if err != nil {
		return err
	}
	if idx != 0 {
		return fmt.Errorf("%w: update via secondary index", ErrUnsupported)
	}
	k := core.EncodeKey(nil, key...)
	rid, found := t.lookupRID(tbl, k)
	if !found {
		return ErrNotFound
	}
	rec := tbl.records.Get(rid)
	if rec == nil {
		return ErrNotFound
	}
	if w := t.pendingWrite(rec); w != nil {
		if w.newData == nil {
			return ErrNotFound
		}
		// Overwrite the buffered write and append a superseding log
		// record; replay order within one transaction is positional.
		w.newData = core.EncodeRow(nil, newRow)
		t.logBuf, w.logOff = wal.AppendRecord(t.logBuf, wal.OpUpdate, tbl.id, uint64(rid), w.newData)
		return nil
	}
	data, ver := rec.stableRead()
	if data == nil {
		return ErrNotFound
	}
	t.reads = append(t.reads, readEntry{rec: rec, ver: ver})
	enc := core.EncodeRow(nil, newRow)
	w := writeOp{tbl: tbl, rid: rid, rec: rec, newData: enc, op: wal.OpUpdate}
	t.logBuf, w.logOff = wal.AppendRecord(t.logBuf, wal.OpUpdate, tbl.id, uint64(rid), enc)
	t.writes = append(t.writes, w)
	return nil
}

// DeleteByKey implements engineapi.Txn.
func (t *Txn) DeleteByKey(table string, key ...core.Value) error {
	if t.finished {
		return ErrTxnDone
	}
	tbl, err := t.db.table(table)
	if err != nil {
		return err
	}
	k := core.EncodeKey(nil, key...)
	rid, found := t.lookupRID(tbl, k)
	if !found {
		return ErrNotFound
	}
	rec := tbl.records.Get(rid)
	if rec == nil {
		return ErrNotFound
	}
	data, ver := rec.stableRead()
	if data == nil {
		return ErrNotFound
	}
	t.reads = append(t.reads, readEntry{rec: rec, ver: ver})
	w := writeOp{tbl: tbl, rid: rid, rec: rec, newData: nil, op: wal.OpDelete}
	t.logBuf, w.logOff = wal.AppendRecord(t.logBuf, wal.OpDelete, tbl.id, uint64(rid), nil)
	t.writes = append(t.writes, w)
	return nil
}

// Commit runs the OCC commit protocol: lock the write set, validate the
// read set, force the log (group commit), apply in place, release.
func (t *Txn) Commit() error {
	if t.finished {
		return ErrTxnDone
	}
	if len(t.writes) == 0 {
		// Read-only: validate and finish.
		if !t.validateReads(nil) {
			t.fail()
			return ErrAbort
		}
		t.finished = true
		t.db.Commits.Add(1)
		return nil
	}
	// Phase 1: lock the write set (deduplicated, no-wait).
	locked := make(map[*record]bool, len(t.writes))
	for i := range t.writes {
		rec := t.writes[i].rec
		if locked[rec] {
			continue
		}
		if !rec.lock() {
			t.unlockAll(locked)
			t.fail()
			return ErrAbort
		}
		locked[rec] = true
	}
	// Phase 2: validate reads (records we also locked validate against
	// their pre-lock version).
	if !t.validateReads(locked) {
		t.unlockAll(locked)
		t.fail()
		return ErrAbort
	}
	// Insert race: a record we are inserting must still be absent.
	for i := range t.writes {
		w := &t.writes[i]
		if w.insert && w.rec.data.Load() != nil {
			t.unlockAll(locked)
			t.fail()
			return ErrDuplicate
		}
	}
	// Phase 3: commit TID, apply in place, release locks.
	ctid := t.db.commitSeq.Add(1)
	for i := range t.writes {
		wal.PatchCSN(t.logBuf, t.writes[i].logOff, ctid)
	}
	for i := range t.writes {
		w := &t.writes[i]
		if w.newData != nil {
			d := w.newData
			w.rec.data.Store(&d)
		} else {
			w.rec.data.Store(nil)
		}
		for _, add := range w.newIdx {
			add.tree.Insert(add.key, uint64(w.rid))
		}
	}
	for rec := range locked {
		rec.unlockBump(ctid)
	}
	// Phase 4: force the log and wait out the group-commit epoch. The
	// client acknowledgement is deferred to the next epoch tick -- the
	// behavior HiEngine's early commit (Section 5.2) improves on.
	if _, err := t.db.log.AppendSync(t.worker, t.logBuf); err != nil {
		t.fail()
		return err
	}
	if w := t.db.cfg.GroupWindow; w > 0 {
		now := time.Now()
		delay.Wait(now.Truncate(w).Add(w).Sub(now))
	}
	t.finished = true
	t.db.Commits.Add(1)
	return nil
}

func (t *Txn) validateReads(locked map[*record]bool) bool {
	for _, r := range t.reads {
		cur := r.rec.tid.Load()
		if locked != nil && locked[r.rec] {
			cur &^= lockBit // we hold the lock; compare versions only
		}
		if cur != r.ver {
			return false
		}
	}
	return true
}

func (t *Txn) unlockAll(locked map[*record]bool) {
	for rec := range locked {
		rec.unlock()
	}
}

// Abort implements engineapi.Txn.
func (t *Txn) Abort() error {
	if t.finished {
		return ErrTxnDone
	}
	t.fail()
	return nil
}

func (t *Txn) fail() {
	t.finished = true
	t.writes = nil
	t.reads = nil
	t.db.Aborts.Add(1)
}
