package innosim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/delay"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
)

func schema() *core.Schema {
	return &core.Schema{
		Name: "t",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "v", Kind: core.KindString},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
}

func testDB(t *testing.T, mut ...func(*Config)) *DB {
	t.Helper()
	cfg := Config{Service: srss.New(srss.Config{}), SegmentSize: 1 << 20}
	for _, m := range mut {
		m(&cfg)
	}
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := db.CreateTable(schema()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCRUD(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin(0)
	if err := tx.Insert("t", core.Row{core.I(1), core.S("one")}); err != nil {
		t.Fatal(err)
	}
	// Read own write before commit.
	row, err := tx.GetByKey("t", 0, core.I(1))
	if err != nil || row[1].Str() != "one" {
		t.Fatalf("own write: %v %v", row, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin(0)
	row, err = tx2.GetByKey("t", 0, core.I(1))
	if err != nil || row[1].Str() != "one" {
		t.Fatalf("committed read: %v %v", row, err)
	}
	if err := tx2.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.S("uno")}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3, _ := db.Begin(0)
	row, _ = tx3.GetByKey("t", 0, core.I(1))
	if row[1].Str() != "uno" {
		t.Fatalf("update lost: %v", row)
	}
	if err := tx3.DeleteByKey("t", core.I(1)); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()

	tx4, _ := db.Begin(0)
	if _, err := tx4.GetByKey("t", 0, core.I(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete lost: %v", err)
	}
	tx4.Commit()
}

func TestDuplicateAndMissing(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin(0)
	tx.Insert("t", core.Row{core.I(1), core.S("x")})
	tx.Commit()

	tx2, _ := db.Begin(0)
	if err := tx2.Insert("t", core.Row{core.I(1), core.S("dup")}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	tx3, _ := db.Begin(0)
	if err := tx3.UpdateByKey("t", 0, []core.Value{core.I(9)}, core.Row{core.I(9), core.S("")}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	tx3.Abort()
}

func TestAbortDiscards(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin(0)
	tx.Insert("t", core.Row{core.I(5), core.S("ghost")})
	tx.Abort()
	tx2, _ := db.Begin(0)
	if _, err := tx2.GetByKey("t", 0, core.I(5)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
	tx2.Commit()
}

func TestRowLockConflictNoWait(t *testing.T) {
	db := testDB(t)
	tx0, _ := db.Begin(0)
	tx0.Insert("t", core.Row{core.I(1), core.S("x")})
	tx0.Commit()

	t1, _ := db.Begin(1)
	t2, _ := db.Begin(2)
	if err := t1.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.S("a")}); err != nil {
		t.Fatal(err)
	}
	if err := t2.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.S("b")}); !errors.Is(err, ErrConflict) {
		t.Fatalf("lock conflict: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Lock released: next writer proceeds.
	t3, _ := db.Begin(2)
	if err := t3.UpdateByKey("t", 0, []core.Value{core.I(1)}, core.Row{core.I(1), core.S("c")}); err != nil {
		t.Fatal(err)
	}
	t3.Commit()
}

func TestBTreeSplitsAndScan(t *testing.T) {
	db := testDB(t, func(c *Config) { c.LeafCapacity = 8 })
	const n = 1000
	perm := rand.Perm(n)
	for _, i := range perm {
		tx, _ := db.Begin(0)
		if err := tx.Insert("t", core.Row{core.I(int64(i)), core.S(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Point reads.
	tx, _ := db.Begin(0)
	for i := 0; i < n; i += 37 {
		row, err := tx.GetByKey("t", 0, core.I(int64(i)))
		if err != nil || row[1].Str() != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %v %v", i, row, err)
		}
	}
	// Full ordered scan.
	var got []int64
	if err := tx.ScanPrefix("t", 0, nil, func(row core.Row) bool {
		got = append(got, row[0].Int())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan %d rows, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order at %d", i)
		}
	}
	tx.Commit()
}

func TestConcurrentDistinctKeys(t *testing.T) {
	db := testDB(t, func(c *Config) { c.LeafCapacity = 16 })
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx, _ := db.Begin(w)
				id := int64(w*per + i)
				if err := tx.Insert("t", core.Row{core.I(id), core.S("v")}); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	tx, _ := db.Begin(0)
	cnt := 0
	tx.ScanPrefix("t", 0, nil, func(core.Row) bool { cnt++; return true })
	tx.Commit()
	if cnt != workers*per {
		t.Fatalf("rows = %d, want %d", cnt, workers*per)
	}
}

func TestCommitForcesStorageTier(t *testing.T) {
	var w delay.CountingWaiter
	m := delay.CloudProfile()
	svc := srss.New(srss.Config{Model: m, Waiter: &w})
	db, err := New(Config{Service: svc, SegmentSize: 1 << 20, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable(schema())
	before := svc.Stats().CrossLayerOps.Load()
	tx, _ := db.Begin(0)
	tx.Insert("t", core.Row{core.I(1), core.S("x")})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().CrossLayerOps.Load() == before {
		t.Fatal("commit did not cross the compute/storage network")
	}
	// The charged commit latency must exceed the cross-layer RTT.
	if w.Total() < m.CrossLayerRTT {
		t.Fatalf("commit charged %v < cross-layer RTT %v", w.Total(), m.CrossLayerRTT)
	}
}

func TestMySQLVariantCostsMore(t *testing.T) {
	run := func(v Variant) time.Duration {
		var w delay.CountingWaiter
		svc := srss.New(srss.Config{Model: delay.CloudProfile(), Waiter: &w})
		db, err := New(Config{Service: svc, Variant: v, SegmentSize: 1 << 20, BatchMax: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		db.CreateTable(schema())
		for i := 0; i < 50; i++ {
			tx, _ := db.Begin(0)
			tx.Insert("t", core.Row{core.I(int64(i)), core.S("x")})
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		db.FlushDirtyPages()
		return w.Total()
	}
	dbmst := run(VariantDBMST)
	mysql := run(VariantMySQL)
	if mysql <= dbmst {
		t.Fatalf("MySQL variant (%v) not more expensive than DBMS-T (%v)", mysql, dbmst)
	}
}

func TestBufferPoolEvictionCharges(t *testing.T) {
	var w delay.CountingWaiter
	svc := srss.New(srss.Config{Model: delay.CloudProfile(), Waiter: &w})
	db, err := New(Config{Service: svc, BufferPoolPages: 4, LeafCapacity: 4, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable(schema())
	for i := 0; i < 200; i++ {
		tx, _ := db.Begin(0)
		tx.Insert("t", core.Row{core.I(int64(i)), core.S("x")})
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	pool := db.pool
	if pool.Misses.Load() == 0 {
		t.Fatal("tiny pool produced no misses")
	}
	if pool.Writebacks.Load() == 0 {
		t.Fatal("dirty evictions produced no writebacks")
	}
	// Data correctness unaffected by pool pressure.
	tx, _ := db.Begin(0)
	for i := 0; i < 200; i += 17 {
		if _, err := tx.GetByKey("t", 0, core.I(int64(i))); err != nil {
			t.Fatalf("get %d under pool pressure: %v", i, err)
		}
	}
	tx.Commit()
}

func TestSecondaryIndexRejected(t *testing.T) {
	db := testDB(t)
	s := schema()
	s.Name = "t2"
	s.Indexes = append(s.Indexes, core.IndexDef{Name: "sec", Columns: []int{1}})
	if err := db.CreateTable(s); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("secondary index accepted: %v", err)
	}
}

func TestImplementsEngineAPI(t *testing.T) {
	var _ engineapi.DB = (*DB)(nil)
}
