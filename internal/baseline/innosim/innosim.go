// Package innosim is the storage-centric baseline engine: a page-based
// B+tree engine with a buffer pool, row locks and ARIES-style write-ahead
// logging forced to the storage tier at commit. It stands in for the
// InnoDB-backed systems of the paper's evaluation (Section 6.1.2):
//
//   - VariantDBMST models DBMS-T (GaussDB(for MySQL) without HiEngine): the
//     SQL layer is optimized and page writes are offloaded to the storage
//     tier ("the log is the database"), but commits still force the redo
//     log across the compute/storage network.
//   - VariantMySQL models vanilla MySQL: on top of the redo force, every
//     commit also forces the binlog, and page flushes pay a doublewrite
//     penalty -- the duplicated storage work the Taurus paper calls out.
//
// The engine is deliberately storage-centric: every page touch goes through
// the buffer pool (hash lookup, LRU maintenance, latch), misses charge
// cross-layer reads, and evictions of dirty pages charge cross-layer
// writes. That cost structure -- not any artificial slowdown -- is what the
// Figure 5 comparison measures.
package innosim

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hiengine/internal/core"
	"hiengine/internal/engineapi"
	"hiengine/internal/srss"
	"hiengine/internal/wal"
)

// Variant selects the baseline flavor.
type Variant int

const (
	// VariantDBMST is the cloud-optimized InnoDB derivative (DBMS-T).
	VariantDBMST Variant = iota
	// VariantMySQL is vanilla MySQL (binlog + doublewrite).
	VariantMySQL
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantMySQL {
		return "mysql"
	}
	return "dbms-t"
}

// Errors. The retryable/duplicate/missing categories wrap the engineapi
// sentinels so drivers classify them uniformly.
var (
	ErrConflict    = fmt.Errorf("innosim: row lock conflict: %w", engineapi.ErrConflict)
	ErrNotFound    = fmt.Errorf("innosim: %w", engineapi.ErrNotFound)
	ErrDuplicate   = fmt.Errorf("innosim: %w", engineapi.ErrDuplicate)
	ErrUnsupported = errors.New("innosim: unsupported operation")
	ErrTxnDone     = errors.New("innosim: transaction finished")
)

// Config configures the engine.
type Config struct {
	Service *srss.Service
	Variant Variant
	// Workers is the session-slot count (default 8).
	Workers int
	// BufferPoolPages caps resident pages (default 8192).
	BufferPoolPages int
	// LeafCapacity is entries per leaf page (default 64).
	LeafCapacity int
	// LogStreams / SegmentSize / BatchMax configure the redo log.
	LogStreams  int
	SegmentSize int64
	BatchMax    int
}

func (c *Config) fill() error {
	if c.Service == nil {
		return errors.New("innosim: Config.Service required")
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.BufferPoolPages <= 0 {
		c.BufferPoolPages = 8192
	}
	if c.LeafCapacity <= 0 {
		c.LeafCapacity = 64
	}
	if c.LogStreams <= 0 {
		c.LogStreams = 4
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 8 << 20
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	return nil
}

// DB is one engine instance.
type DB struct {
	cfg Config
	svc *srss.Service
	log *wal.Manager
	// binlog models MySQL's second commit-time force.
	binlog *wal.Manager

	pool *bufferPool

	mu     sync.RWMutex
	tables map[string]*table

	locks lockTable

	tidSeq atomic.Uint64
}

// New builds an engine.
func New(cfg Config) (*DB, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	log, err := wal.Open(wal.Config{
		Service: cfg.Service, Tier: srss.TierStorage,
		Streams: cfg.LogStreams, SegmentSize: cfg.SegmentSize, BatchMax: cfg.BatchMax,
	})
	if err != nil {
		return nil, err
	}
	touchFactor := 1
	if cfg.Variant == VariantMySQL {
		touchFactor = 3 // duplicated data storage: more page work per row
	}
	db := &DB{
		cfg:    cfg,
		svc:    cfg.Service,
		log:    log,
		pool:   newBufferPool(cfg.Service, cfg.BufferPoolPages, touchFactor),
		tables: make(map[string]*table),
	}
	if cfg.Variant == VariantMySQL {
		bl, err := wal.Open(wal.Config{
			Service: cfg.Service, Tier: srss.TierStorage,
			Streams: 1, SegmentSize: cfg.SegmentSize, BatchMax: cfg.BatchMax,
		})
		if err != nil {
			return nil, err
		}
		db.binlog = bl
	}
	db.locks.init()
	return db, nil
}

// Name implements engineapi.DB.
func (db *DB) Name() string { return "innosim-" + db.cfg.Variant.String() }

// Close shuts the engine down.
func (db *DB) Close() {
	db.log.Close()
	if db.binlog != nil {
		db.binlog.Close()
	}
}

// CreateTable implements engineapi.DB. Only primary-key schemas are
// supported (the storage-centric baseline runs the sysbench workloads).
func (db *DB) CreateTable(s *core.Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(s.Indexes) > 1 {
		return fmt.Errorf("%w: secondary indexes", ErrUnsupported)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("innosim: table %q exists", s.Name)
	}
	id := uint32(len(db.tables) + 1)
	db.tables[s.Name] = newTable(id, s, db.pool, db.cfg.LeafCapacity)
	return nil
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("innosim: no table %q", name)
	}
	return t, nil
}

// FlushDirtyPages writes back all dirty pages (checkpoint), charging
// storage-tier writes -- twice for the MySQL variant's doublewrite buffer.
func (db *DB) FlushDirtyPages() int {
	n := db.pool.flushAll()
	if db.cfg.Variant == VariantMySQL {
		// Doublewrite: each flushed page is written twice.
		db.pool.chargeWrites(n)
	}
	return n
}

// --- transactions ---------------------------------------------------------

type pendingWrite struct {
	t      *table
	key    []byte
	row    []byte // encoded row; nil = delete
	insert bool
}

// Txn is one transaction: 2PL with no-wait exclusive row locks, deferred
// application of writes at commit, redo forced to the storage tier.
type Txn struct {
	db       *DB
	worker   int
	tid      uint64
	writes   []pendingWrite
	held     []lockRef
	logBuf   []byte
	finished bool
}

// Begin implements engineapi.DB.
func (db *DB) Begin(worker int) (engineapi.Txn, error) {
	return &Txn{db: db, worker: worker, tid: db.tidSeq.Add(1)}, nil
}

// Insert implements engineapi.Txn.
func (t *Txn) Insert(tableName string, row core.Row) error {
	if t.finished {
		return ErrTxnDone
	}
	tbl, err := t.db.table(tableName)
	if err != nil {
		return err
	}
	key, err := tbl.pkOf(row)
	if err != nil {
		return err
	}
	if !t.lock(tbl, key) {
		t.rollback()
		return ErrConflict
	}
	// Uniqueness: absent in the tree and not pending-deleted by us.
	if t.pendingRow(tbl, key) == nil {
		if _, found := tbl.search(key); found && !t.pendingDelete(tbl, key) {
			t.rollback()
			return ErrDuplicate
		}
	}
	enc := core.EncodeRow(nil, row)
	t.writes = append(t.writes, pendingWrite{t: tbl, key: key, row: enc, insert: true})
	t.logBuf, _ = wal.AppendRecord(t.logBuf, wal.OpInsert, tbl.id, 0, enc)
	return nil
}

// GetByKey implements engineapi.Txn (primary index only).
func (t *Txn) GetByKey(tableName string, idx int, key ...core.Value) (core.Row, error) {
	if t.finished {
		return nil, ErrTxnDone
	}
	if idx != 0 {
		return nil, ErrUnsupported
	}
	tbl, err := t.db.table(tableName)
	if err != nil {
		return nil, err
	}
	k := core.EncodeKey(nil, key...)
	if enc := t.pendingRow(tbl, k); enc != nil {
		return core.DecodeRow(enc)
	}
	if t.pendingDelete(tbl, k) {
		return nil, ErrNotFound
	}
	enc, found := tbl.search(k)
	if !found {
		return nil, ErrNotFound
	}
	return core.DecodeRow(enc)
}

// UpdateByKey implements engineapi.Txn.
func (t *Txn) UpdateByKey(tableName string, idx int, key []core.Value, newRow core.Row) error {
	if t.finished {
		return ErrTxnDone
	}
	if idx != 0 {
		return ErrUnsupported
	}
	tbl, err := t.db.table(tableName)
	if err != nil {
		return err
	}
	k := core.EncodeKey(nil, key...)
	if !t.lock(tbl, k) {
		t.rollback()
		return ErrConflict
	}
	if t.pendingRow(tbl, k) == nil && !t.pendingDelete(tbl, k) {
		if _, found := tbl.search(k); !found {
			return ErrNotFound
		}
	}
	enc := core.EncodeRow(nil, newRow)
	t.writes = append(t.writes, pendingWrite{t: tbl, key: k, row: enc})
	t.logBuf, _ = wal.AppendRecord(t.logBuf, wal.OpUpdate, tbl.id, 0, enc)
	return nil
}

// DeleteByKey implements engineapi.Txn.
func (t *Txn) DeleteByKey(tableName string, key ...core.Value) error {
	if t.finished {
		return ErrTxnDone
	}
	tbl, err := t.db.table(tableName)
	if err != nil {
		return err
	}
	k := core.EncodeKey(nil, key...)
	if !t.lock(tbl, k) {
		t.rollback()
		return ErrConflict
	}
	if t.pendingRow(tbl, k) == nil {
		if _, found := tbl.search(k); !found {
			return ErrNotFound
		}
	}
	t.writes = append(t.writes, pendingWrite{t: tbl, key: k, row: nil})
	t.logBuf, _ = wal.AppendRecord(t.logBuf, wal.OpDelete, tbl.id, 0, nil)
	return nil
}

// ScanPrefix implements engineapi.Txn (primary index only).
func (t *Txn) ScanPrefix(tableName string, idx int, prefix []core.Value, fn func(core.Row) bool) error {
	if t.finished {
		return ErrTxnDone
	}
	if idx != 0 {
		return ErrUnsupported
	}
	tbl, err := t.db.table(tableName)
	if err != nil {
		return err
	}
	p := core.EncodeKey(nil, prefix...)
	var scanErr error
	tbl.scan(p, core.KeySuccessor(p), func(k, enc []byte) bool {
		if t.pendingDelete(tbl, k) {
			return true
		}
		if pe := t.pendingRow(tbl, k); pe != nil {
			enc = pe
		}
		row, err := core.DecodeRow(enc)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(row)
	})
	return scanErr
}

// pendingRow returns this txn's buffered row for key (nil if none/deleted).
func (t *Txn) pendingRow(tbl *table, key []byte) []byte {
	for i := len(t.writes) - 1; i >= 0; i-- {
		w := &t.writes[i]
		if w.t == tbl && bytes.Equal(w.key, key) {
			return w.row
		}
	}
	return nil
}

func (t *Txn) pendingDelete(tbl *table, key []byte) bool {
	for i := len(t.writes) - 1; i >= 0; i-- {
		w := &t.writes[i]
		if w.t == tbl && bytes.Equal(w.key, key) {
			return w.row == nil
		}
	}
	return false
}

func (t *Txn) lock(tbl *table, key []byte) bool {
	ref := lockRef{table: tbl.id, key: string(key)}
	for _, h := range t.held {
		if h == ref {
			return true
		}
	}
	if !t.db.locks.acquire(ref, t.tid) {
		return false
	}
	t.held = append(t.held, ref)
	return true
}

// Commit forces the redo log (and binlog for the MySQL variant) to the
// storage tier, applies buffered writes to the pages, and releases locks.
func (t *Txn) Commit() error {
	if t.finished {
		return ErrTxnDone
	}
	if len(t.writes) > 0 {
		if _, err := t.db.log.AppendSync(t.worker, t.logBuf); err != nil {
			t.rollback()
			return err
		}
		if t.db.binlog != nil {
			if _, err := t.db.binlog.AppendSync(0, t.logBuf); err != nil {
				t.rollback()
				return err
			}
		}
		for i := range t.writes {
			w := &t.writes[i]
			if w.row == nil {
				w.t.delete(w.key)
			} else {
				w.t.insertOrReplace(w.key, w.row)
			}
		}
	}
	t.release()
	t.finished = true
	return nil
}

// Abort discards buffered writes and releases locks.
func (t *Txn) Abort() error {
	if t.finished {
		return ErrTxnDone
	}
	t.rollback()
	return nil
}

func (t *Txn) rollback() {
	t.release()
	t.writes = nil
	t.finished = true
}

func (t *Txn) release() {
	for _, ref := range t.held {
		t.db.locks.release(ref, t.tid)
	}
	t.held = nil
}

// --- row locks -------------------------------------------------------------

type lockRef struct {
	table uint32
	key   string
}

type lockTable struct {
	shards [64]lockShard
}

type lockShard struct {
	mu sync.Mutex
	m  map[lockRef]uint64
}

func (lt *lockTable) init() {
	for i := range lt.shards {
		lt.shards[i].m = make(map[lockRef]uint64)
	}
}

func (lt *lockTable) shard(ref lockRef) *lockShard {
	var h uint32 = 2166136261
	for i := 0; i < len(ref.key); i++ {
		h = (h ^ uint32(ref.key[i])) * 16777619
	}
	return &lt.shards[(h^ref.table)&63]
}

// acquire takes an exclusive no-wait lock (deadlock-free by construction).
func (lt *lockTable) acquire(ref lockRef, tid uint64) bool {
	s := lt.shard(ref)
	s.mu.Lock()
	defer s.mu.Unlock()
	if owner, held := s.m[ref]; held {
		return owner == tid
	}
	s.m[ref] = tid
	return true
}

func (lt *lockTable) release(ref lockRef, tid uint64) {
	s := lt.shard(ref)
	s.mu.Lock()
	if s.m[ref] == tid {
		delete(s.m, ref)
	}
	s.mu.Unlock()
}
