package innosim

import (
	"bytes"
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hiengine/internal/core"
	"hiengine/internal/srss"
)

// table is one clustered B+tree keyed by the encoded primary key. Point
// operations descend under the table's structure read-lock with per-page
// latches; structural modifications (splits) retry under the exclusive
// structure lock -- a simplification of InnoDB's index latching that keeps
// the same cost shape: every page visit goes through the buffer pool.
type table struct {
	id      uint32
	schema  *core.Schema
	pool    *bufferPool
	leafCap int

	mu   sync.RWMutex
	root *page
}

type page struct {
	id    uint64
	latch sync.RWMutex
	leaf  bool
	keys  [][]byte
	// children[i] subtree holds keys < keys[i]; children[len(keys)] the
	// rest (internal pages only).
	children []*page
	rows     [][]byte // leaf payloads
	next     *page    // leaf chain
}

func newTable(id uint32, s *core.Schema, pool *bufferPool, leafCap int) *table {
	t := &table{id: id, schema: s, pool: pool, leafCap: leafCap}
	t.root = pool.newPage(true)
	return t
}

func (t *table) pkOf(row core.Row) ([]byte, error) {
	def := t.schema.Indexes[0]
	vals := make([]core.Value, len(def.Columns))
	for i, c := range def.Columns {
		vals[i] = row[c]
	}
	return core.EncodeKey(nil, vals...), nil
}

// findLeaf descends to the leaf covering key, charging a buffer-pool touch
// per page. Caller holds t.mu (read or write).
func (t *table) findLeaf(key []byte) *page {
	p := t.root
	for {
		t.pool.touch(p.id, false)
		if p.leaf {
			return p
		}
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(key, p.keys[i]) < 0 })
		p = p.children[i]
	}
}

// search returns the encoded row for key.
func (t *table) search(key []byte) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key)
	leaf.latch.RLock()
	defer leaf.latch.RUnlock()
	i := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if i < len(leaf.keys) && bytes.Equal(leaf.keys[i], key) {
		return leaf.rows[i], true
	}
	return nil, false
}

// insertOrReplace upserts key -> enc, splitting pages as needed.
func (t *table) insertOrReplace(key, enc []byte) {
	// Fast path: fits in the leaf without structural change.
	t.mu.RLock()
	leaf := t.findLeaf(key)
	leaf.latch.Lock()
	i := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if i < len(leaf.keys) && bytes.Equal(leaf.keys[i], key) {
		leaf.rows[i] = enc
		t.pool.touch(leaf.id, true)
		leaf.latch.Unlock()
		t.mu.RUnlock()
		return
	}
	if len(leaf.keys) < t.leafCap {
		leaf.keys = append(leaf.keys, nil)
		leaf.rows = append(leaf.rows, nil)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		copy(leaf.rows[i+1:], leaf.rows[i:])
		leaf.keys[i] = key
		leaf.rows[i] = enc
		t.pool.touch(leaf.id, true)
		leaf.latch.Unlock()
		t.mu.RUnlock()
		return
	}
	leaf.latch.Unlock()
	t.mu.RUnlock()

	// Slow path: structural change under the exclusive lock.
	t.mu.Lock()
	defer t.mu.Unlock()
	t.insertLocked(key, enc)
}

// insertLocked performs a recursive insert with splits; caller holds t.mu
// exclusively, so no page latches are needed.
func (t *table) insertLocked(key, enc []byte) {
	promoted, right := t.insertRec(t.root, key, enc)
	if right != nil {
		newRoot := t.pool.newPage(false)
		newRoot.keys = [][]byte{promoted}
		newRoot.children = []*page{t.root, right}
		t.root = newRoot
	}
}

func (t *table) insertRec(p *page, key, enc []byte) ([]byte, *page) {
	t.pool.touch(p.id, true)
	if p.leaf {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
		if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
			p.rows[i] = enc
			return nil, nil
		}
		p.keys = append(p.keys, nil)
		p.rows = append(p.rows, nil)
		copy(p.keys[i+1:], p.keys[i:])
		copy(p.rows[i+1:], p.rows[i:])
		p.keys[i] = key
		p.rows[i] = enc
		if len(p.keys) <= t.leafCap {
			return nil, nil
		}
		// Split.
		mid := len(p.keys) / 2
		right := t.pool.newPage(true)
		right.keys = append(right.keys, p.keys[mid:]...)
		right.rows = append(right.rows, p.rows[mid:]...)
		p.keys = p.keys[:mid]
		p.rows = p.rows[:mid]
		right.next = p.next
		p.next = right
		return right.keys[0], right
	}
	i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(key, p.keys[i]) < 0 })
	promoted, right := t.insertRec(p.children[i], key, enc)
	if right == nil {
		return nil, nil
	}
	p.keys = append(p.keys, nil)
	p.children = append(p.children, nil)
	copy(p.keys[i+1:], p.keys[i:])
	copy(p.children[i+2:], p.children[i+1:])
	p.keys[i] = promoted
	p.children[i+1] = right
	if len(p.keys) <= t.leafCap {
		return nil, nil
	}
	mid := len(p.keys) / 2
	upKey := p.keys[mid]
	rightP := t.pool.newPage(false)
	rightP.keys = append(rightP.keys, p.keys[mid+1:]...)
	rightP.children = append(rightP.children, p.children[mid+1:]...)
	p.keys = p.keys[:mid]
	p.children = p.children[:mid+1]
	return upKey, rightP
}

// delete removes key (no page merging; freed slots are reused on insert,
// like InnoDB's lazy approach).
func (t *table) delete(key []byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key)
	leaf.latch.Lock()
	defer leaf.latch.Unlock()
	i := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if i >= len(leaf.keys) || !bytes.Equal(leaf.keys[i], key) {
		return false
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.rows = append(leaf.rows[:i], leaf.rows[i+1:]...)
	t.pool.touch(leaf.id, true)
	return true
}

// scan visits [from, to) in key order.
func (t *table) scan(from, to []byte, fn func(key, enc []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(from)
	for leaf != nil {
		leaf.latch.RLock()
		t.pool.touch(leaf.id, false)
		keys := append([][]byte(nil), leaf.keys...)
		rows := append([][]byte(nil), leaf.rows...)
		next := leaf.next
		leaf.latch.RUnlock()
		for i, k := range keys {
			if bytes.Compare(k, from) < 0 {
				continue
			}
			if to != nil && bytes.Compare(k, to) >= 0 {
				return
			}
			if !fn(k, rows[i]) {
				return
			}
		}
		leaf = next
	}
}

// --- buffer pool ------------------------------------------------------------

// bufferPool models InnoDB's buffer pool: a bounded resident set with LRU
// replacement. Every page access pays the pool's bookkeeping (hash lookup,
// LRU bump under a mutex); misses charge a cross-layer storage read and may
// evict a dirty page, charging a cross-layer write-back.
type bufferPool struct {
	svc      *srss.Service
	capacity int
	// touchCost is charged on every page access (hit or miss): the
	// buffer-pool management overhead a page-based engine pays that an
	// indirection-array engine does not. The MySQL variant pays a
	// multiple, reflecting its duplicated storage work (Taurus paper).
	touchCost time.Duration

	mu       sync.Mutex
	resident map[uint64]*list.Element
	lru      *list.List // front = most recent; values are pageIDs
	dirty    map[uint64]bool

	pageSeq atomic.Uint64

	// Stats.
	Hits       atomic.Int64
	Misses     atomic.Int64
	Writebacks atomic.Int64
}

func newBufferPool(svc *srss.Service, capacity int, touchFactor int) *bufferPool {
	return &bufferPool{
		svc:       svc,
		capacity:  capacity,
		touchCost: svc.Model().PageAccess * time.Duration(touchFactor),
		resident:  make(map[uint64]*list.Element),
		lru:       list.New(),
		dirty:     make(map[uint64]bool),
	}
}

// newPage allocates a fresh page, resident and dirty (no read charge).
func (bp *bufferPool) newPage(leaf bool) *page {
	p := &page{id: bp.pageSeq.Add(1), leaf: leaf}
	bp.mu.Lock()
	bp.admit(p.id)
	bp.dirty[p.id] = true
	bp.mu.Unlock()
	return p
}

// touch records an access to pageID, charging the pool management cost on
// every access, a storage read on a miss, and a write-back if a dirty page
// is evicted.
func (bp *bufferPool) touch(pageID uint64, write bool) {
	if bp.touchCost > 0 {
		bp.svc.Waiter().Wait(bp.touchCost)
	}
	bp.mu.Lock()
	if el, ok := bp.resident[pageID]; ok {
		bp.lru.MoveToFront(el)
		if write {
			bp.dirty[pageID] = true
		}
		bp.mu.Unlock()
		bp.Hits.Add(1)
		return
	}
	evictDirty := bp.admit(pageID)
	if write {
		bp.dirty[pageID] = true
	}
	bp.mu.Unlock()
	bp.Misses.Add(1)
	m := bp.svc.Model()
	bp.svc.Waiter().Wait(m.CrossLayerRTT + m.SSDRead)
	if evictDirty {
		bp.Writebacks.Add(1)
		bp.svc.Waiter().Wait(m.CrossLayerRTT + m.IntraStorageRTT + m.SSDWrite)
	}
}

// admit inserts pageID into the resident set, evicting the LRU victim if at
// capacity. Returns whether the victim was dirty. Caller holds bp.mu.
func (bp *bufferPool) admit(pageID uint64) (evictedDirty bool) {
	if bp.lru.Len() >= bp.capacity {
		victim := bp.lru.Back()
		if victim != nil {
			vid := victim.Value.(uint64)
			bp.lru.Remove(victim)
			delete(bp.resident, vid)
			if bp.dirty[vid] {
				delete(bp.dirty, vid)
				evictedDirty = true
			}
		}
	}
	bp.resident[pageID] = bp.lru.PushFront(pageID)
	return evictedDirty
}

// flushAll writes back every dirty page and returns the count.
func (bp *bufferPool) flushAll() int {
	bp.mu.Lock()
	n := len(bp.dirty)
	bp.dirty = make(map[uint64]bool)
	bp.mu.Unlock()
	bp.chargeWrites(n)
	return n
}

// chargeWrites charges n storage-tier page writes.
func (bp *bufferPool) chargeWrites(n int) {
	m := bp.svc.Model()
	for i := 0; i < n; i++ {
		bp.svc.Waiter().Wait(m.CrossLayerRTT + m.IntraStorageRTT + m.SSDWrite)
		bp.Writebacks.Add(1)
	}
}
