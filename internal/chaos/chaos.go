// Package chaos is HiEngine's deterministic fault-injection subsystem.
//
// Components (srss, wal, core) register named injection sites -- crash
// points at commit-pipeline stages, torn replicated writes on the last
// append, checkpoint/destage crashes, transient slowness -- and a seeded
// Engine decides, reproducibly, which hits of which sites fire which
// faults. The whole schedule is a pure function of the seed: the Nth hit
// of a site fires (or not) regardless of goroutine interleaving, so any
// torture-harness failure replays from its seed alone.
//
// Fault model. A "crash" models fail-stop process death: the Engine
// latches a crashed state and every subsequent instrumented operation
// (appends, reads, commits) fails with ErrCrashed until the harness calls
// ClearCrash -- exactly the window between a real crash and the restart
// that runs recovery. A "tear" models death in the middle of a replicated
// append: each replica keeps an independently chosen prefix of the data
// (divergent across replicas), the PLog seals, and the crash latches. A
// "delay" models transient slowness (slow node, congested link) without
// killing anything.
//
// The Engine is injected at the bottom of the stack (srss.Config.Chaos)
// and shared upward: wal and core reach it through the SRSS service, so a
// single seed governs the whole deployment. A nil *Engine is inert: every
// method is nil-receiver safe and free, so production paths pay one
// predictable branch.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCrashed is the simulated-crash error. Everything an instrumented
// component returns after a crash point fires wraps it; harnesses detect
// the crash with errors.Is and restart via recovery.
var ErrCrashed = errors.New("chaos: simulated crash")

// ErrInjected is the transient-fault error: a Fault rule fired at a site.
// Unlike ErrCrashed it does NOT latch -- only the faulted operation fails
// (a rejected accept, a dropped connection), the process lives on. Callers
// scope the blast radius: the network layer fails one connection, never
// the server.
var ErrInjected = errors.New("chaos: injected fault")

// Action is what a rule does when it fires.
type Action uint8

const (
	// Crash latches the crashed state: this and every later instrumented
	// operation fails with ErrCrashed until ClearCrash.
	Crash Action = iota
	// Tear applies only to replicated-append sites: the write is torn
	// (divergent prefixes across replicas) and the crash latches.
	Tear
	// Delay injects extra latency at the site and continues.
	Delay
	// Fault fails the single operation with ErrInjected without latching
	// a crash: the component degrades (drops a connection, rejects an
	// accept) but the process keeps serving.
	Fault
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Crash:
		return "crash"
	case Tear:
		return "tear"
	case Delay:
		return "delay"
	case Fault:
		return "fault"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Rule arms one fault at one site. Firing discipline: if OnHit > 0 the
// rule fires exactly at that 1-based hit index of the site; otherwise it
// fires pseudo-randomly per hit with probability Prob (deterministic in
// (seed, site, hit index)). Count caps the total number of fires
// (0 = unlimited; OnHit rules fire at most once regardless).
type Rule struct {
	Site   string
	Action Action
	OnHit  int64
	Prob   float64
	Delay  time.Duration // Delay action only
	Count  int64
}

// --- site catalog --------------------------------------------------------

var (
	catalogMu sync.Mutex
	catalog   = map[string]string{}
)

// RegisterSite records a site name and its one-line semantics in the
// global catalog. Components call it from init(); duplicate registration
// with a different description panics (two call points disagreeing about
// a site's meaning is a bug).
func RegisterSite(name, desc string) {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	if prev, ok := catalog[name]; ok && prev != desc {
		panic(fmt.Sprintf("chaos: site %q re-registered with different semantics", name))
	}
	catalog[name] = desc
}

// Sites returns the registered site names, sorted (for docs and tests).
func Sites() []string {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SiteDoc returns a site's registered description.
func SiteDoc(name string) (string, bool) {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	d, ok := catalog[name]
	return d, ok
}

// --- deterministic randomness --------------------------------------------

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mix used
// both as the per-decision hash and as the step function of derived RNG
// streams. Decisions hash (seed, site, hit index) so they are independent
// of cross-site interleaving.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a site name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// unitFloat maps a 64-bit draw to [0,1).
func unitFloat(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// Rand is a deterministic RNG stream derived from the engine seed and a
// stream name. It is NOT safe for concurrent use; harness loops own one.
type Rand struct{ state uint64 }

// NewRand derives a standalone stream (usable without an Engine).
func NewRand(seed uint64, stream string) *Rand {
	return &Rand{state: splitmix64(seed ^ fnv64(stream))}
}

// Uint64 returns the next draw.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a draw in [0,n). n must be > 0.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Float64 returns a draw in [0,1).
func (r *Rand) Float64() float64 { return unitFloat(r.Uint64()) }

// --- engine ---------------------------------------------------------------

// siteState is per-site runtime state: a hit counter driving decisions and
// a fired counter for assertions/observability.
type siteState struct {
	hits  atomic.Int64
	fired atomic.Int64
}

// Engine is one seeded fault schedule. All methods are safe for concurrent
// use and safe on a nil receiver (inert).
type Engine struct {
	seed    uint64
	crashed atomic.Bool

	mu    sync.RWMutex
	rules map[string][]*armedRule
	sites map[string]*siteState
}

type armedRule struct {
	Rule
	fires atomic.Int64
}

// New creates an engine with the given seed.
func New(seed uint64) *Engine {
	return &Engine{
		seed:  seed,
		rules: make(map[string][]*armedRule),
		sites: make(map[string]*siteState),
	}
}

// SeedFromEnv reads CHAOS_SEED (decimal or 0x hex). ok is false when the
// variable is unset or unparsable.
func SeedFromEnv() (seed uint64, ok bool) {
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(v, 0, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Seed returns the engine's seed (0 for nil).
func (e *Engine) Seed() uint64 {
	if e == nil {
		return 0
	}
	return e.seed
}

// Arm adds a rule. Arming is cheap and may happen mid-run (tests arm an
// OnHit rule relative to the current hit count to target one operation).
func (e *Engine) Arm(r Rule) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.rules[r.Site] = append(e.rules[r.Site], &armedRule{Rule: r})
	e.mu.Unlock()
}

// Disarm removes every rule armed at a site.
func (e *Engine) Disarm(site string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	delete(e.rules, site)
	e.mu.Unlock()
}

// Rand derives a deterministic RNG stream from the engine seed.
func (e *Engine) Rand(stream string) *Rand {
	if e == nil {
		return NewRand(0, stream)
	}
	return NewRand(e.seed, stream)
}

func (e *Engine) site(name string) *siteState {
	e.mu.RLock()
	s := e.sites[name]
	e.mu.RUnlock()
	if s != nil {
		return s
	}
	e.mu.Lock()
	if s = e.sites[name]; s == nil {
		s = &siteState{}
		e.sites[name] = s
	}
	e.mu.Unlock()
	return s
}

// decide evaluates the site's rules against one hit and returns the first
// rule that fires (nil if none).
func (e *Engine) decide(site string, hit int64) *armedRule {
	e.mu.RLock()
	rules := e.rules[site]
	e.mu.RUnlock()
	for i, r := range rules {
		if r.OnHit > 0 {
			if hit == r.OnHit && r.fires.Load() == 0 {
				r.fires.Add(1)
				return r
			}
			continue
		}
		if r.Prob <= 0 {
			continue
		}
		if r.Count > 0 && r.fires.Load() >= r.Count {
			continue
		}
		u := splitmix64(e.seed ^ fnv64(site) ^ uint64(hit)*0x9e3779b97f4a7c15 ^ uint64(i)<<56)
		if unitFloat(u) < r.Prob {
			r.fires.Add(1)
			return r
		}
	}
	return nil
}

// Check is the generic injection point. It counts a hit of the site, then:
// if the engine has already crashed, returns ErrCrashed immediately; if a
// Delay rule fires, sleeps and returns nil; if a Crash rule fires, latches
// the crash and returns ErrCrashed; if a Fault rule fires, returns
// ErrInjected without latching. Tear rules never fire through Check
// (they need the replica fan-out of TearPlan). Nil engines return nil.
func (e *Engine) Check(site string) error {
	if e == nil {
		return nil
	}
	if e.crashed.Load() {
		return fmt.Errorf("%w (latched, at %s)", ErrCrashed, site)
	}
	st := e.site(site)
	hit := st.hits.Add(1)
	r := e.decide(site, hit)
	if r == nil {
		return nil
	}
	switch r.Action {
	case Delay:
		st.fired.Add(1)
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		return nil
	case Crash:
		st.fired.Add(1)
		e.crashed.Store(true)
		return fmt.Errorf("%w (at %s, hit %d)", ErrCrashed, site, hit)
	case Fault:
		st.fired.Add(1)
		return fmt.Errorf("%w (at %s, hit %d)", ErrInjected, site, hit)
	default:
		return nil // Tear rules are evaluated by TearPlan only
	}
}

// TearPlan is the injection point for replicated appends. It counts a hit
// of the site; if a Tear rule fires it latches the crash and returns the
// per-replica cut lengths: replica i persists data[:cuts[i]]. At least one
// replica is cut short of n (the write is genuinely torn) and cuts may
// diverge across replicas. For n < 2 a firing tear degenerates to cuts of
// all zero (death before any byte landed). ok is false when nothing fires.
func (e *Engine) TearPlan(site string, n, replicas int) (cuts []int, ok bool) {
	if e == nil || replicas <= 0 {
		return nil, false
	}
	if e.crashed.Load() {
		return nil, false // Check at the call site reports the latched crash
	}
	st := e.site(site)
	hit := st.hits.Add(1)
	r := e.decide(site, hit)
	if r == nil || r.Action != Tear {
		return nil, false
	}
	st.fired.Add(1)
	e.crashed.Store(true)
	cuts = make([]int, replicas)
	if n < 2 {
		return cuts, true
	}
	// Deterministic cut pattern from (seed, site, hit): the longest
	// surviving prefix is in [1, n-1]; each replica keeps a prefix in
	// [0, maxCut], with at least one replica holding maxCut so the torn
	// extent is well defined.
	h := splitmix64(e.seed ^ fnv64(site) ^ uint64(hit)*0xd1342543de82ef95)
	maxCut := 1 + int(h%uint64(n-1))
	longest := int(splitmix64(h) % uint64(replicas))
	for i := range cuts {
		if i == longest {
			cuts[i] = maxCut
			continue
		}
		cuts[i] = int(splitmix64(h+uint64(i)+1) % uint64(maxCut+1))
	}
	return cuts, true
}

// Crashed reports whether a crash has latched.
func (e *Engine) Crashed() bool {
	if e == nil {
		return false
	}
	return e.crashed.Load()
}

// ClearCrash clears the latched crash: the harness calls it right before
// running recovery ("the process restarted").
func (e *Engine) ClearCrash() {
	if e == nil {
		return
	}
	e.crashed.Store(false)
}

// Hits returns how many times a site was reached.
func (e *Engine) Hits(site string) int64 {
	if e == nil {
		return 0
	}
	e.mu.RLock()
	s := e.sites[site]
	e.mu.RUnlock()
	if s == nil {
		return 0
	}
	return s.hits.Load()
}

// Fired returns how many faults fired at a site.
func (e *Engine) Fired(site string) int64 {
	if e == nil {
		return 0
	}
	e.mu.RLock()
	s := e.sites[site]
	e.mu.RUnlock()
	if s == nil {
		return 0
	}
	return s.fired.Load()
}
