// Crash-recovery torture harness (ISSUE 2 tentpole): a seeded random
// workload runs under a chaos fault schedule; every injected crash is
// followed by recovery and a diff against an in-memory oracle. Any failure
// reproduces from its seed:
//
//	CHAOS_SEED=17 go test ./internal/chaos -run Torture -count=1 -v
//
// The harness lives in package chaos_test because it drives the full stack
// (core -> wal -> srss), all of which import chaos.
package chaos_test

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"hiengine/internal/chaos"
	"hiengine/internal/core"
	"hiengine/internal/srss"
)

// tortureIterations is the number of seeds run; each seed is an independent
// lifetime of workloads, crashes and recoveries.
const tortureIterations = 50

// crashy reports whether err means "the process just died" in the fault
// model: a chaos crash latch, the engine's fail-stop latch, or total
// storage unavailability.
func crashy(err error) bool {
	return errors.Is(err, chaos.ErrCrashed) ||
		errors.Is(err, core.ErrDurabilityLost) ||
		errors.Is(err, srss.ErrNoHealthyNodes)
}

// oracle mirrors the acknowledged database state. Keys whose last write
// ended in a crash are indeterminate: the commit may or may not have become
// durable before the process died, so either the previous or the attempted
// state is acceptable after recovery.
type oracle struct {
	committed     map[int64]int64 // key -> balance of acknowledged state
	indeterminate map[int64]bool
}

func newOracle() *oracle {
	return &oracle{committed: map[int64]int64{}, indeterminate: map[int64]bool{}}
}

func tortureSchema() *core.Schema {
	return &core.Schema{
		Name: "accounts",
		Columns: []core.Column{
			{Name: "id", Kind: core.KindInt},
			{Name: "balance", Kind: core.KindInt},
		},
		Indexes: []core.IndexDef{{Name: "pk", Columns: []int{0}, Unique: true}},
	}
}

func TestTorture(t *testing.T) {
	base := uint64(0xC0FFEE)
	iters := tortureIterations
	if s, ok := chaos.SeedFromEnv(); ok {
		base = s
		iters = 1 // reproduce exactly one seed
	}
	if v := os.Getenv("TORTURE_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			iters = n
		}
	}
	for i := 0; i < iters; i++ {
		seed := base + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tortureOne(t, seed)
		})
	}
}

func tortureOne(t *testing.T, seed uint64) {
	ch := chaos.New(seed)
	rules := []chaos.Rule{
		{Site: srss.SiteAppendTear, Action: chaos.Tear, Prob: 0.02},
		{Site: srss.SiteAppendAfter, Action: chaos.Crash, Prob: 0.005},
		{Site: "wal.flush.before_append", Action: chaos.Crash, Prob: 0.01},
		{Site: "wal.flush.after_append", Action: chaos.Crash, Prob: 0.01},
		{Site: core.SiteCommitBegin, Action: chaos.Crash, Prob: 0.005},
		{Site: core.SiteCheckpointMid, Action: chaos.Crash, Prob: 0.05},
		{Site: srss.SiteRead, Action: chaos.Delay, Prob: 0.02, Delay: 50 * time.Microsecond},
	}

	svc := srss.New(srss.Config{ComputeNodes: 6, StorageNodes: 4, Chaos: ch})
	name := fmt.Sprintf("torture-%d", seed)
	cfg := core.Config{
		Name:        name,
		Service:     svc,
		Workers:     2,
		LogStreams:  1,
		SegmentSize: 16 << 10,
	}
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tbl, err := e.CreateTable(tortureSchema())
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	// Arm the schedule only once the database is live: crashes during the
	// very first bootstrap (before the well-known manifest name exists) have
	// nothing to recover and are covered by dedicated unit tests instead.
	for _, r := range rules {
		ch.Arm(r)
	}

	rnd := ch.Rand("torture.workload")
	o := newOracle()
	failed := map[int]bool{} // currently-failed compute nodes
	crashes, repairs := 0, 0

	const (
		ops      = 400
		keySpace = 64
	)
	for op := 0; op < ops; op++ {
		// Fault-environment actions, drawn from the same seeded stream.
		switch rnd.Intn(40) {
		case 0: // fail a compute node (cap 2 so placement can still succeed)
			if len(failed) < 2 {
				id := rnd.Intn(6)
				if !failed[id] {
					svc.ComputeNode(id).Fail()
					failed[id] = true
				}
			}
		case 1: // heal one failed node
			for id := range failed {
				svc.ComputeNode(id).Heal()
				delete(failed, id)
				break
			}
		case 2: // background repair sweep
			if n, _ := svc.RepairOnce(); n > 0 {
				repairs += n
			}
		case 3: // checkpoint (may crash at core.checkpoint.mid)
			if _, cerr := e.Checkpoint(); cerr != nil {
				if !crashy(cerr) {
					t.Fatalf("op %d: checkpoint: %v", op, cerr)
				}
				e, tbl = recoverAndDiff(t, ch, svc, cfg, o, &crashes, e, rules)
			}
		}

		key := int64(rnd.Intn(keySpace))
		bal := int64(rnd.Intn(1_000_000))
		del := rnd.Intn(10) == 0

		tx, berr := e.Begin(0)
		if berr != nil {
			if !crashy(berr) {
				t.Fatalf("op %d: begin: %v", op, berr)
			}
			e, tbl = recoverAndDiff(t, ch, svc, cfg, o, &crashes, e, rules)
			continue
		}
		prior, exists := o.committed[key]
		_ = prior
		var werr error
		rid, _, gerr := tx.GetByKey(tbl, 0, core.I(key))
		switch {
		case gerr == nil && del:
			werr = tx.Delete(tbl, rid)
		case gerr == nil:
			werr = tx.Update(tbl, rid, core.Row{core.I(key), core.I(bal)})
		case errors.Is(gerr, core.ErrNotFound):
			if del {
				_ = tx.Abort()
				continue
			}
			_, werr = tx.Insert(tbl, core.Row{core.I(key), core.I(bal)})
		default:
			_ = tx.Abort()
			if !crashy(gerr) {
				t.Fatalf("op %d: get key %d: %v", op, key, gerr)
			}
			e, tbl = recoverAndDiff(t, ch, svc, cfg, o, &crashes, e, rules)
			continue
		}
		if werr != nil {
			_ = tx.Abort()
			if crashy(werr) {
				e, tbl = recoverAndDiff(t, ch, svc, cfg, o, &crashes, e, rules)
			}
			// Conflicts/duplicates can't happen single-threaded; anything
			// else non-crashy is a real bug.
			if !crashy(werr) {
				t.Fatalf("op %d: write key %d: %v", op, key, werr)
			}
			continue
		}
		cerr := tx.Commit()
		switch {
		case cerr == nil:
			if del {
				delete(o.committed, key)
			} else {
				o.committed[key] = bal
			}
			delete(o.indeterminate, key)
		case crashy(cerr):
			// Ambiguous: the write may or may not have reached the log
			// before the crash. Either outcome is acceptable.
			o.indeterminate[key] = true
			e, tbl = recoverAndDiff(t, ch, svc, cfg, o, &crashes, e, rules)
		default:
			t.Fatalf("op %d: commit key %d: %v", op, key, cerr)
		}
		_ = exists
	}

	// Final verification pass; leave the schedule disarmed so Close runs
	// on clean hardware.
	e, tbl = recoverAndDiff(t, ch, svc, cfg, o, &crashes, e, rules)
	_ = tbl
	for _, r := range rules {
		ch.Disarm(r.Site)
	}
	e.Close()
	t.Logf("seed %d: %d crashes, %d replicas repaired, %d live keys, %d torn appends",
		seed, crashes, repairs, len(o.committed), svc.Stats().TornAppends.Load())
}

// recoverAndDiff models a process restart: close the dead engine, clear the
// crash latch, heal storage redundancy, recover from the manifest, and diff
// the visible state against the oracle. Indeterminate keys (in-flight at a
// crash) are resolved to whatever recovery produced; determinate keys must
// match exactly. Returns the recovered engine ready for more traffic.
func recoverAndDiff(t *testing.T, ch *chaos.Engine, svc *srss.Service, cfg core.Config,
	o *oracle, crashes *int, dead *core.Engine, rules []chaos.Rule) (*core.Engine, *core.Table) {
	t.Helper()
	*crashes++
	// A restart quiesces the fault schedule: the armed rules model faults in
	// the crashed process, and recovery must run clean or every recovery
	// would cascade into the next crash. Hit counters keep advancing, so the
	// schedule stays a pure function of the seed when re-armed below.
	for _, r := range rules {
		ch.Disarm(r.Site)
	}
	ch.ClearCrash()
	dead.Close()
	// Repair degraded PLogs before recovery reads them (the repairer would
	// normally have been running all along); failed nodes may still be
	// down, which repair tolerates when spares exist.
	_, _ = svc.RepairOnce()
	e, stats, err := core.RecoverByName(cfg, core.RecoverOptions{ReplayThreads: 2})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	_ = stats
	tbl, err := e.Table("accounts")
	if err != nil {
		t.Fatalf("recovered engine lost the table: %v", err)
	}
	tx, err := e.Begin(0)
	if err != nil {
		t.Fatalf("begin on recovered engine: %v", err)
	}
	for key := int64(0); key < 64; key++ {
		_, row, gerr := tx.GetByKey(tbl, 0, core.I(key))
		if o.indeterminate[key] {
			// Resolve the ambiguity to the recovered truth.
			if gerr == nil {
				o.committed[key] = row[1].Int()
			} else if errors.Is(gerr, core.ErrNotFound) {
				delete(o.committed, key)
			} else {
				t.Fatalf("key %d (indeterminate): %v", key, gerr)
			}
			delete(o.indeterminate, key)
			continue
		}
		want, exists := o.committed[key]
		switch {
		case gerr == nil && !exists:
			t.Fatalf("key %d: present after recovery, oracle says deleted/absent (row %v)", key, row)
		case gerr == nil && row[1].Int() != want:
			t.Fatalf("key %d: balance %d after recovery, oracle says %d", key, row[1].Int(), want)
		case errors.Is(gerr, core.ErrNotFound) && exists:
			t.Fatalf("key %d: lost after recovery, oracle says balance %d", key, want)
		case gerr != nil && !errors.Is(gerr, core.ErrNotFound):
			t.Fatalf("key %d: read after recovery: %v", key, gerr)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("verify-txn commit: %v", err)
	}
	for _, r := range rules {
		ch.Arm(r)
	}
	return e, tbl
}
