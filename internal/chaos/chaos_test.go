package chaos

import (
	"errors"
	"testing"
	"time"
)

// TestNilEngineInert verifies a nil *Engine is free and harmless at every
// injection point (production configuration).
func TestNilEngineInert(t *testing.T) {
	var e *Engine
	if err := e.Check("any.site"); err != nil {
		t.Fatalf("nil engine Check: %v", err)
	}
	if _, ok := e.TearPlan("any.site", 100, 3); ok {
		t.Fatal("nil engine tore a write")
	}
	if e.Crashed() {
		t.Fatal("nil engine crashed")
	}
	e.ClearCrash()
	e.Arm(Rule{Site: "x", Action: Crash, Prob: 1})
	if e.Hits("x") != 0 || e.Fired("x") != 0 {
		t.Fatal("nil engine counted")
	}
	if e.Rand("s") == nil {
		t.Fatal("nil engine Rand returned nil")
	}
}

// TestDeterministicSchedule: the same seed fires the same faults at the
// same hit indices; a different seed produces a different schedule.
func TestDeterministicSchedule(t *testing.T) {
	fires := func(seed uint64) []int64 {
		e := New(seed)
		e.Arm(Rule{Site: "s", Action: Crash, Prob: 0.05})
		var out []int64
		for i := int64(1); i <= 400; i++ {
			if err := e.Check("s"); err != nil {
				out = append(out, i)
				e.ClearCrash() // keep sampling the schedule
			}
		}
		return out
	}
	a, b := fires(42), fires(42)
	if len(a) == 0 {
		t.Fatal("p=0.05 over 400 hits fired nothing; decision hash broken")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	c := fires(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestOnHitFiresExactlyOnce targets one specific hit.
func TestOnHitFiresExactlyOnce(t *testing.T) {
	e := New(7)
	e.Arm(Rule{Site: "s", Action: Crash, OnHit: 3})
	for i := 1; i <= 2; i++ {
		if err := e.Check("s"); err != nil {
			t.Fatalf("fired early at hit %d: %v", i, err)
		}
	}
	if err := e.Check("s"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("hit 3: %v", err)
	}
	e.ClearCrash()
	for i := 4; i <= 10; i++ {
		if err := e.Check("s"); err != nil {
			t.Fatalf("OnHit refired at hit %d: %v", i, err)
		}
	}
	if got := e.Fired("s"); got != 1 {
		t.Fatalf("fired %d times, want 1", got)
	}
}

// TestCrashLatch: after a crash fires, every site fails until ClearCrash.
func TestCrashLatch(t *testing.T) {
	e := New(1)
	e.Arm(Rule{Site: "a", Action: Crash, OnHit: 1})
	if err := e.Check("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash point did not fire: %v", err)
	}
	if err := e.Check("b"); !errors.Is(err, ErrCrashed) {
		t.Fatal("unrelated site survived the latched crash")
	}
	if _, ok := e.TearPlan("c", 10, 3); ok {
		t.Fatal("tear fired while crashed")
	}
	e.ClearCrash()
	if err := e.Check("b"); err != nil {
		t.Fatalf("after ClearCrash: %v", err)
	}
}

// TestTearPlanShape checks torn-cut invariants across many draws.
func TestTearPlanShape(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		e := New(seed)
		e.Arm(Rule{Site: "t", Action: Tear, OnHit: 1})
		n := 10 + int(seed%500)
		cuts, ok := e.TearPlan("t", n, 3)
		if !ok {
			t.Fatalf("seed %d: tear did not fire", seed)
		}
		if !e.Crashed() {
			t.Fatalf("seed %d: tear did not latch crash", seed)
		}
		if len(cuts) != 3 {
			t.Fatalf("seed %d: %d cuts", seed, len(cuts))
		}
		max := 0
		for _, c := range cuts {
			if c < 0 || c >= n {
				t.Fatalf("seed %d: cut %d outside [0,%d)", seed, c, n)
			}
			if c > max {
				max = c
			}
		}
		if max < 1 {
			t.Fatalf("seed %d: no replica kept any bytes (maxCut=%d)", seed, max)
		}
		// Determinism: a fresh engine with the same seed tears identically.
		e2 := New(seed)
		e2.Arm(Rule{Site: "t", Action: Tear, OnHit: 1})
		cuts2, _ := e2.TearPlan("t", n, 3)
		for i := range cuts {
			if cuts[i] != cuts2[i] {
				t.Fatalf("seed %d: cuts diverged: %v vs %v", seed, cuts, cuts2)
			}
		}
	}
}

// TestDelayRuleDoesNotCrash: delays fire and continue.
func TestDelayRuleDoesNotCrash(t *testing.T) {
	e := New(9)
	e.Arm(Rule{Site: "d", Action: Delay, Prob: 1, Delay: time.Microsecond})
	for i := 0; i < 5; i++ {
		if err := e.Check("d"); err != nil {
			t.Fatalf("delay rule returned error: %v", err)
		}
	}
	if e.Crashed() {
		t.Fatal("delay latched a crash")
	}
	if e.Fired("d") != 5 {
		t.Fatalf("fired %d, want 5", e.Fired("d"))
	}
}

// TestCountCap bounds probabilistic rules.
func TestCountCap(t *testing.T) {
	e := New(3)
	e.Arm(Rule{Site: "s", Action: Crash, Prob: 1, Count: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if err := e.Check("s"); err != nil {
			fired++
			e.ClearCrash()
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d, want 2 (Count cap)", fired)
	}
}

// TestSiteCatalog: registration is idempotent, listed sorted, conflicting
// docs panic.
func TestSiteCatalog(t *testing.T) {
	RegisterSite("test.site.b", "b doc")
	RegisterSite("test.site.a", "a doc")
	RegisterSite("test.site.a", "a doc") // idempotent
	if d, ok := SiteDoc("test.site.a"); !ok || d != "a doc" {
		t.Fatalf("doc lookup: %q %v", d, ok)
	}
	names := Sites()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "test.site.a" {
			ia = i
		}
		if n == "test.site.b" {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("catalog ordering: a=%d b=%d in %v", ia, ib, names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	RegisterSite("test.site.a", "different doc")
}

// TestRandStreams: derived streams are deterministic per (seed, name) and
// distinct across names.
func TestRandStreams(t *testing.T) {
	a1, a2 := NewRand(5, "x"), NewRand(5, "x")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("same stream diverged")
		}
	}
	b := NewRand(5, "y")
	if NewRand(5, "x").Uint64() == b.Uint64() {
		t.Fatal("distinct streams collided on first draw")
	}
	r := NewRand(5, "z")
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

// TestSeedFromEnv parses decimal and hex.
func TestSeedFromEnv(t *testing.T) {
	t.Setenv("CHAOS_SEED", "")
	if _, ok := SeedFromEnv(); ok {
		t.Fatal("empty env parsed")
	}
	t.Setenv("CHAOS_SEED", "123")
	if s, ok := SeedFromEnv(); !ok || s != 123 {
		t.Fatalf("decimal: %d %v", s, ok)
	}
	t.Setenv("CHAOS_SEED", "0xff")
	if s, ok := SeedFromEnv(); !ok || s != 255 {
		t.Fatalf("hex: %d %v", s, ok)
	}
	t.Setenv("CHAOS_SEED", "nope")
	if _, ok := SeedFromEnv(); ok {
		t.Fatal("garbage parsed")
	}
}
